package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/graph"
	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/obs"

	// Arms locktable.NewCluster: the partitioned backend registers itself
	// in its init (and imports netlock, arming locktable.NewRemote too).
	_ "distlock/internal/cluster"
)

// DefaultSiteInbox is the default per-site inbox capacity of the actor
// lock-table backend — the engine's backpressure bound under that backend.
// See locktable.DefaultSiteInbox.
const DefaultSiteInbox = locktable.DefaultSiteInbox

// Backend selects the engine's lock-table implementation (see
// internal/locktable).
type Backend int

const (
	// BackendDefault resolves per strategy: sharded for StrategyNone (a
	// certified mix needs no wait-for bookkeeping at grant time, so it may
	// take the striped fast path) AND for StrategyWoundWait (the striped
	// wound path earned the flip: TestWoundStormSoak — Zipf-hot wound
	// storms over every stripe configuration — has been clean in CI since
	// PR 4). StrategyDetect still resolves to actor: the detector is the
	// uncertified-mix escape hatch, not a throughput path, and keeps the
	// auditable per-site serialization domain.
	BackendDefault Backend = iota
	// BackendActor: one lock-manager goroutine per site, every operation a
	// message round trip. This is the DEBUG/REFERENCE implementation —
	// kept to cross-check the sharded backend through the conformance
	// suite and to bisect grant-path bugs, not a production default.
	BackendActor
	// BackendSharded: hash-striped mutexes with per-entity shared/
	// exclusive lock states and FIFO wait queues; uncontended grants take
	// zero channel hops. The production backend for every in-process tier.
	BackendSharded
	// BackendRemote: the cross-process backend — a netlock client speaking
	// the wire protocol to a dlserver-hosted table (internal/netlock).
	// Requires EngineOptions.RemoteAddr; never chosen by BackendDefault.
	BackendRemote
	// BackendCluster: the partitioned lock space — each entity hash-routed
	// to one of N dlservers (internal/cluster), so independent servers
	// jointly serve one lock space with no cross-server coordination on
	// the certified tier. Requires EngineOptions.RemoteAddrs; never chosen
	// by BackendDefault.
	BackendCluster
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendDefault:
		return "default"
	case BackendActor:
		return "actor"
	case BackendSharded:
		return "sharded"
	case BackendRemote:
		return "remote"
	case BackendCluster:
		return "cluster"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// resolve maps BackendDefault to the strategy's proven backend: sharded
// for the certified tier and for wound-wait (post-soak-gate), actor only
// for the detector strategy.
func (b Backend) resolve(s Strategy) Backend {
	if b != BackendDefault {
		return b
	}
	if s == StrategyDetect {
		return BackendActor
	}
	return BackendSharded
}

// EngineOptions parameterizes a long-lived Engine (see NewEngine). The
// zero value is a usable StrategyNone engine with default tuning.
type EngineOptions struct {
	// Strategy selects the engine's deadlock handling.
	Strategy Strategy
	// DetectEvery is the detector period (StrategyDetect only). Default 2ms.
	DetectEvery time.Duration
	// Backend selects the lock-table implementation. BackendDefault picks
	// sharded for StrategyNone and StrategyWoundWait, actor for
	// StrategyDetect.
	Backend Backend
	// RemoteAddr is the netlock server address BackendRemote dials. The
	// server must host the same database (the handshake verifies a
	// fingerprint) with a matching wound-wait/trace configuration.
	RemoteAddr string
	// RemoteAddrs are the dlserver addresses BackendCluster dials — one
	// partition per address, each entity owned by exactly one server. The
	// list order is part of the cluster identity: every client process
	// must pass the same addresses in the same order to agree on entity
	// ownership. Every server must host the same database with matching
	// wound-wait/trace configuration.
	RemoteAddrs []string
	// Shards is the sharded backend's initial stripe count. Zero resolves
	// from GOMAXPROCS and enables adaptive splitting (see
	// locktable.Config.Shards).
	Shards int
	// MaxShards caps the sharded backend's adaptive stripe splitting (see
	// locktable.Config.MaxShards). Zero keeps the backend's default policy.
	MaxShards int
	// StripeProbe is the sharded backend's contention-probe period (see
	// locktable.Config.StripeProbe). Zero keeps the default; negative
	// disables the probe.
	StripeProbe time.Duration
	// SiteInbox is the actor backend's per-site inbox capacity, that
	// backend's backpressure bound (see DefaultSiteInbox). Default 256.
	SiteInbox int
	// PipelineDepth enables certified-chain pipelining over a wire
	// backend: sessions of a StrategyNone engine keep up to this many
	// unacknowledged acquires in flight (shipping the next lock request
	// before the previous ack returns) and fire releases without waiting,
	// surfacing their errors at Commit. Zero (the default) keeps every
	// operation synchronous. The knob only takes effect when the
	// strategy is StrategyNone AND the backend implements
	// locktable.AsyncTable (remote, cluster): static certification is the
	// proof that the pipelined chain cannot deadlock, so the wound-wait
	// and detection tiers — whose mixes carry no such proof — always run
	// synchronously. A pipelined session trades mid-chain error locality
	// for throughput: a failed acquire (wound, lease expiry) surfaces at
	// the next session operation rather than at the Lock that shipped it,
	// and a context cancellation inside a chain aborts the whole attempt
	// instead of leaving the session resumable.
	PipelineDepth int
	// FlushInterval is the wire backends' batch window (see
	// locktable.Config.RemoteFlushInterval): how long each connection's
	// flush-coalescing writer parks after waking before draining its send
	// queue in one syscall. Zero flushes immediately. In-process backends
	// ignore it.
	FlushInterval time.Duration
	// Trace records per-entity lock-grant order for post-run
	// serializability checking. The log is only safe to read after Close.
	Trace bool
	// Metrics is the lock-table counter bundle the engine threads into its
	// backend. Nil allocates a private bundle (counting is always on —
	// see internal/obs); pass a shared bundle to aggregate several engines.
	Metrics *obs.TableMetrics
	// Tracer is an optional lossy ring-buffer event tracer (grants, wounds,
	// expiries). Unlike Trace it does NOT disable the sharded backend's CAS
	// fast path: the ring is fed from the fast path itself and needs no
	// holder identity bookkeeping. Nil disables event tracing.
	Tracer *obs.Ring
	// MeasureLockWait arms the engine's lock-wait histogram (see
	// Engine.LockWait): two clock reads per granted Lock. MeasureHoldTime
	// arms the hold-time histogram (Engine.HoldTime): grant-stamp
	// bookkeeping per lock plus a third clock read at release. Both off by
	// default: they are the instruments that add time.Now calls to the
	// per-operation path, so they stay opt-in while the counters are
	// unconditional.
	MeasureLockWait bool
	MeasureHoldTime bool
	// TraceSampleEvery arms end-to-end op tracing: roughly one in this
	// many lock operations is sampled into a span recording its full stage
	// waterfall (submit → enqueue → flush → server → grant → reply →
	// wakeup; see internal/obs). Zero (the default) disables tracing
	// entirely; negative selects DefaultTraceSample. Unsampled operations
	// pay one predicted branch; sampling never disarms the sharded
	// backend's CAS shared fast path, because in-process spans are stamped
	// by the session layer, not the table.
	TraceSampleEvery int
}

// DefaultTraceSample is the sampling period TraceSampleEvery < 0 selects:
// frequent enough that a benchmark run collects hundreds of waterfalls,
// sparse enough that the clock reads vanish in the op cost.
const DefaultTraceSample = 64

// Engine is a long-lived lock-service core: a pluggable lock table
// (internal/locktable — per-site actor goroutines, or hash-striped
// mutexes), plus an optional global deadlock detector. Transactions are
// driven through it as Sessions (Begin / Lock / Unlock / Commit / Abort);
// the batch entry point Run replays templates over the same session layer.
// Create with NewEngine, shut down with Close.
type Engine struct {
	strategy    Strategy
	backend     Backend
	ddb         *model.DDB
	table       locktable.Table
	detectEvery time.Duration
	trace       bool

	// async/pipeline: certified-chain pipelining (EngineOptions.
	// PipelineDepth), armed only when the strategy is StrategyNone and
	// the table implements the async capability.
	async    locktable.AsyncTable
	pipeline int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	holds    holdTimer // high-resolution Config.HoldTime delays (lazy)

	progress atomic.Int64 // bumped on every grant/commit
	commits  atomic.Int64
	aborts   atomic.Int64
	wounds   atomic.Int64
	detects  atomic.Int64
	nextID   atomic.Int64

	// Observability (see internal/obs). metrics is the backend's counter
	// bundle; tracer the optional event ring; pipelinedOps/syncOps split
	// lock operations by path — certified-chain pipelined submission vs
	// the synchronous fallback every other configuration takes. lockWait
	// and holdTime are non-nil only with EngineOptions.MeasureLockWait /
	// MeasureHoldTime respectively.
	metrics      *obs.TableMetrics
	tracer       *obs.Ring
	pipelinedOps obs.StripedCounter
	syncOps      obs.StripedCounter
	lockWait     *obs.Histogram
	holdTime     *obs.Histogram

	// Op tracing (EngineOptions.TraceSampleEvery): spans holds the sampled
	// waterfalls, stageHist their per-stage gap distributions, spanEvery
	// the sampling period. spanTable/asyncSpan are the backend's traced
	// acquire capabilities, nil for in-process backends (whose single
	// "grant" stage the session stamps itself — the table, and in
	// particular the sharded CAS fast path, never sees a span).
	spans     *obs.SpanRing
	stageHist *obs.StageHistograms
	spanEvery int
	spanTable locktable.SpannedTable
	asyncSpan locktable.SpannedAsyncTable

	mu       sync.Mutex
	abortChs map[int]chan struct{} // instance id -> abort signal
	commitEp map[int]int           // instance id -> commit epoch (Trace only)
}

// NewEngine builds an engine over the database and starts its lock table
// (and the detector, under StrategyDetect). The engine serves sessions
// until Close.
func NewEngine(ddb *model.DDB, opts EngineOptions) (*Engine, error) {
	if ddb == nil {
		return nil, fmt.Errorf("runtime: nil database")
	}
	if opts.DetectEvery <= 0 {
		opts.DetectEvery = 2 * time.Millisecond
	}
	e := &Engine{
		strategy:    opts.Strategy,
		backend:     opts.Backend.resolve(opts.Strategy),
		ddb:         ddb,
		detectEvery: opts.DetectEvery,
		trace:       opts.Trace,
		stop:        make(chan struct{}),
		abortChs:    map[int]chan struct{}{},
		commitEp:    map[int]int{},
		metrics:     opts.Metrics,
		tracer:      opts.Tracer,
	}
	if e.metrics == nil {
		e.metrics = obs.NewTableMetrics()
	}
	if opts.MeasureLockWait {
		e.lockWait = new(obs.Histogram)
	}
	if opts.MeasureHoldTime {
		e.holdTime = new(obs.Histogram)
	}
	e.holds.stop = e.stop
	cfg := locktable.Config{
		Metrics:   e.metrics,
		Tracer:    opts.Tracer,
		WoundWait: opts.Strategy == StrategyWoundWait,
		OnWound: func(holderID int) {
			e.wounds.Add(1)
			e.signalAbort(holderID)
		},
		Trace:               opts.Trace,
		SiteInbox:           opts.SiteInbox,
		Shards:              opts.Shards,
		MaxShards:           opts.MaxShards,
		StripeProbe:         opts.StripeProbe,
		RemoteFlushInterval: opts.FlushInterval,
		// The detector closes wait-for cycles through shared holders, so
		// they must be named in Snapshot: anonymous fast-path readers
		// would hide the edges and cycles would go undetected.
		DisableSharedFastPath: opts.Strategy == StrategyDetect,
	}
	switch e.backend {
	case BackendSharded:
		e.table = locktable.NewSharded(ddb, cfg)
	case BackendActor:
		e.table = locktable.NewActor(ddb, cfg)
	case BackendRemote:
		tab, err := locktable.NewRemote(ddb, cfg, opts.RemoteAddr)
		if err != nil {
			return nil, fmt.Errorf("runtime: remote lock table: %w", err)
		}
		e.table = tab
	case BackendCluster:
		tab, err := locktable.NewCluster(ddb, cfg, opts.RemoteAddrs)
		if err != nil {
			return nil, fmt.Errorf("runtime: cluster lock table: %w", err)
		}
		e.table = tab
	default:
		return nil, fmt.Errorf("runtime: unknown lock-table backend %v", opts.Backend)
	}
	if opts.TraceSampleEvery != 0 {
		e.spanEvery = opts.TraceSampleEvery
		if e.spanEvery < 0 {
			e.spanEvery = DefaultTraceSample
		}
		e.spans = obs.NewSpanRing(1024)
		e.stageHist = new(obs.StageHistograms)
		e.spanTable, _ = e.table.(locktable.SpannedTable)
		e.asyncSpan, _ = e.table.(locktable.SpannedAsyncTable)
	}
	if opts.PipelineDepth > 0 && opts.Strategy == StrategyNone {
		// Pipelining is gated on the paper's thesis: only a statically
		// certified mix (StrategyNone) has the deadlock-freedom proof that
		// makes shipping lock request N+1 before ack N sound. Backends
		// without the async capability (all in-process ones) silently stay
		// synchronous — their acquires are already sub-microsecond.
		if at, ok := e.table.(locktable.AsyncTable); ok {
			e.async = at
			e.pipeline = opts.PipelineDepth
		}
	}
	if e.strategy == StrategyDetect {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.detector()
		}()
	}
	return e, nil
}

// DDB returns the database the engine serves.
func (e *Engine) DDB() *model.DDB { return e.ddb }

// Strategy returns the engine's deadlock handling.
func (e *Engine) Strategy() Strategy { return e.strategy }

// Backend returns the engine's resolved lock-table backend.
func (e *Engine) Backend() Backend { return e.backend }

// Counters is a snapshot of the engine's cumulative counters.
type Counters struct {
	Commits  int64 `json:"commits"`
	Aborts   int64 `json:"aborts"`
	Wounds   int64 `json:"wounds"`
	Detected int64 `json:"detected"`
	// PipelinedOps counts lock operations submitted through the
	// certified-chain async path; SyncOps those that took the synchronous
	// fallback (in-process backends, or strategies without the
	// certification proof). Their split is the realized pipelining ratio.
	// Sessions tally locally and flush at session end, so live reads lag
	// open sessions' in-flight operations; exact once sessions close.
	PipelinedOps int64 `json:"pipelined_ops"`
	SyncOps      int64 `json:"sync_ops"`
}

// Counters returns the engine's cumulative counters. Safe to call on a
// running engine.
func (e *Engine) Counters() Counters {
	return Counters{
		Commits:      e.commits.Load(),
		Aborts:       e.aborts.Load(),
		Wounds:       e.wounds.Load(),
		Detected:     e.detects.Load(),
		PipelinedOps: e.pipelinedOps.Load(),
		SyncOps:      e.syncOps.Load(),
	}
}

// TableMetrics returns the engine's lock-table counter bundle
// (EngineOptions.Metrics, or the private one). Safe to read concurrently
// with traffic and after Close.
func (e *Engine) TableMetrics() *obs.TableMetrics { return e.metrics }

// Tracer returns the engine's event ring (nil unless EngineOptions.Tracer
// was set).
func (e *Engine) Tracer() *obs.Ring { return e.tracer }

// LockWait summarizes the engine's lock-wait histogram: the wall time of
// every granted Session.Lock, in nanoseconds. Zeros unless
// EngineOptions.MeasureLockWait armed it.
func (e *Engine) LockWait() obs.HistogramSnapshot { return e.lockWait.Snapshot() }

// HoldTime summarizes the engine's hold-time histogram: grant-to-release
// wall time of every cleanly unlocked lock, in nanoseconds. Zeros unless
// EngineOptions.MeasureHoldTime armed it.
func (e *Engine) HoldTime() obs.HistogramSnapshot { return e.holdTime.Snapshot() }

// Spans returns the engine's sampled-span ring (nil unless
// EngineOptions.TraceSampleEvery armed tracing). Safe to read concurrently
// with traffic.
func (e *Engine) Spans() *obs.SpanRing { return e.spans }

// StageLatency summarizes the per-stage gap distributions of every span
// / the engine committed: where a sampled op's latency went, stage by stage.
// Nil unless tracing is armed.
func (e *Engine) StageLatency() []obs.StageLatency { return e.stageHist.Snapshot() }

// recordSpan commits a completed span and folds it into the per-stage
// distributions. The caller must be the span's last holder (see
// obs.Span.Commit).
func (e *Engine) recordSpan(sp *obs.Span) {
	if sp == nil {
		return
	}
	e.stageHist.Record(sp.Commit())
}

// Close stops the lock table (and detector) and waits for them to exit.
// Session operations blocked in the engine return ErrClosed; locks still
// held by open sessions die with the lock table. Close is idempotent.
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.table.Close()
	e.wg.Wait()
}

// signalAbort notifies a session to abort (non-blocking; coalesced).
func (e *Engine) signalAbort(id int) {
	e.mu.Lock()
	ch := e.abortChs[id]
	e.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// detector periodically snapshots the global wait-for graph through the
// lock table and aborts the youngest transaction on each cycle.
func (e *Engine) detector() {
	for {
		select {
		case <-e.stop:
			return
		case <-time.After(e.detectEvery):
		}
		edges := e.table.Snapshot()
		if len(edges) == 0 {
			continue
		}
		// Build an id-level graph, remembering each id's current attempt
		// key so the victim can be wounded epoch-exactly.
		ids := map[int]int{}
		var prio []int64
		var order []int
		keyOf := map[int]locktable.InstKey{}
		idx := func(key locktable.InstKey, p int64) int {
			keyOf[key.ID] = key
			if i, ok := ids[key.ID]; ok {
				return i
			}
			ids[key.ID] = len(order)
			order = append(order, key.ID)
			prio = append(prio, p)
			return len(order) - 1
		}
		// Deterministic edge order.
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Waiter.ID != edges[j].Waiter.ID {
				return edges[i].Waiter.ID < edges[j].Waiter.ID
			}
			return edges[i].Holder.ID < edges[j].Holder.ID
		})
		g := graph.NewDigraph(2 * len(edges))
		for _, ed := range edges {
			g.AddArc(idx(ed.Waiter, ed.WaiterPrio), idx(ed.Holder, ed.HolderPrio))
		}
		if cyc := g.FindCycle(); cyc != nil {
			victim := cyc[0]
			for _, v := range cyc[1:] {
				if prio[v] > prio[victim] {
					victim = v
				}
			}
			e.detects.Add(1)
			e.signalAbort(order[victim])
			// Prompt delivery: also wake the victim's parked Acquires
			// through the table. The abort channel covers sessions that
			// are between operations (and the request-not-yet-queued
			// race); Wound covers the common case — the victim is parked
			// in a lock wait that is part of the cycle. The wound targets
			// the attempt key from the snapshot, so if it lands after the
			// victim already aborted and retried at the next epoch it is
			// a no-op, never a spurious wound of the healthy retry. Safe
			// here: the detector goroutine holds no table locks.
			e.table.Wound(keyOf[order[victim]])
		}
	}
}
