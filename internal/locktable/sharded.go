package locktable

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/model"
	"distlock/internal/obs"
)

// shardedTable is the contention-adaptive striped backend: entities are
// split across stripes, each a mutex guarding its entities' lock states,
// and the stripe set itself adapts to the observed load.
//
// Two mechanisms keep the hot path off the mutexes:
//
//  1. An atomic shared-grant fast path. Each entity owns a padded atomic
//     word (its own cache line) packing a fast-reader count with a
//     slow-mode bit. While the bit is clear the entity has no exclusive
//     holder and no wait queue, so a shared Acquire is one CAS increment
//     and a shared Release one CAS decrement — no stripe mutex, no
//     convoy. The moment a writer arrives it sets the bit under the
//     stripe mutex, which atomically fences out new fast readers: they
//     observe the bit and fall through to the mutex path, parking FIFO
//     behind the writer exactly as before. Draining fast readers release
//     through the mutex (the bit routes them there), so the writer is
//     granted precisely when the count hits zero. FIFO
//     writer-blocks-later-readers semantics are preserved bit-for-bit;
//     the conformance suite proves it.
//
//     Fast shared grants are ANONYMOUS — a count, not a holder set — so
//     the fast path is only enabled when nothing needs per-holder
//     identity: it is off under WoundWait (wound decisions compare
//     holder priorities), under Trace (the grant log records identity),
//     and under Config.DisableSharedFastPath (for embedders like the
//     netlock server that attribute holders themselves). Snapshot
//     attributes waiters blocked on fast readers to AnonReaderKey.
//
//  2. Contention-adaptive striping. The stripe count resolves from
//     GOMAXPROCS by default (Config.Shards > 0 pins it), each stripe
//     counts its slow-path operations in a padded atomic, and a cheap
//     background probe samples the counters every Config.StripeProbe:
//     when one stripe absorbs a disproportionate share of the traffic
//     the set is doubled (up to the MaxShards cap) by an atomic
//     stripe-set swap that re-homes the lock states while holding every
//     old stripe mutex. StripeStats reports the observed layout.
//
// This is the backend the paper's program cashes in with — the default
// for both the certified and the wound-wait tier (the actor backend is
// the debug/reference implementation). A mix that static certification
// (Theorems 3–5) proved deadlock-free needs no deadlock handling, hence
// no wait-for bookkeeping at grant time, hence no reason to serialize
// independent entities through one goroutine — or, for a crowd of
// readers on one scorching entity, through one mutex.
//
// Lock modes: each entity is held by at most one exclusive holder or any
// number of shared holders. Grant order is FIFO per entity (a waiting
// writer blocks later readers; consecutive readers at the queue head are
// granted as one wave) or oldest-first under wound-wait.
type shardedTable struct {
	cfg Config

	// m counts grants/releases/wounds (always on; normalized from
	// Config.Metrics) and tr is the optional lossy event tracer. Both are
	// hot-path safe: striped padded atomics and a mutex-free ring, so
	// neither disables the CAS fast path the way Config.Trace does.
	m  *obs.TableMetrics
	tr *obs.Ring

	// fast holds the per-entity packed reader state (fastSlot), indexed by
	// the dense EntityID. Nil when the fast path is disabled (wound-wait,
	// trace, explicit opt-out, or an oversized/absent database).
	fast []fastSlot

	// set is the current stripe set. Readers load it, lock the target
	// stripe, and re-check the pointer (a resize may have swapped the set
	// between the load and the lock); resizes install a doubled set while
	// holding every old stripe mutex.
	set       atomic.Pointer[stripeSet]
	maxShards int
	splits    atomic.Int64

	// resizeMu serializes resizes against each other and against the
	// whole-table walks (Wound, Snapshot), which need a stable set without
	// per-stripe retries. Lock order: resizeMu, then stripe mutexes.
	resizeMu sync.Mutex

	// traceLog is the table-level grant log (Config.Trace only — which
	// disables the fast path, so every grant passes through here). It is
	// table-level rather than per-stripe so it survives resizes; per-entity
	// order is preserved because same-entity grants serialize under the
	// entity's stripe mutex. Lock order: stripe mutex, then traceMu.
	traceMu  sync.Mutex
	traceLog []GrantEvent

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// fastSlot is one entity's packed atomic reader state, padded to a cache
// line so reader crowds on different entities never false-share.
type fastSlot struct {
	// state packs the fast-reader count (low 32 bits) with slowModeBit.
	state atomic.Int64
	_     [56]byte
}

const (
	// slowModeBit marks an entity as mutex-managed: set whenever the
	// entity has any slow-path state (an exclusive holder, identified
	// shared holders, or a non-empty wait queue). While set, shared
	// Acquire/Release fall through to the stripe mutex; it is cleared,
	// under the mutex, when the slow state empties.
	slowModeBit = int64(1) << 32
	// fastCountMask extracts the fast-reader count.
	fastCountMask = slowModeBit - 1

	// maxFastPathEntities bounds the fast-slot array (64 B per entity);
	// beyond it the table falls back to mutex-only operation.
	maxFastPathEntities = 1 << 18
)

// AnonReaderID is the instance ID Snapshot reports as the holder of an
// entity held by anonymous fast-path readers (see Config
// DisableSharedFastPath). The sentinel never issues requests of its own,
// so it cannot appear as a waiter and cannot close a wait-for cycle.
const AnonReaderID = -1

// AnonReaderKey is the InstKey form of AnonReaderID.
var AnonReaderKey = InstKey{ID: AnonReaderID, Epoch: 0}

type stripeSet struct {
	stripes []*stripe
}

type stripe struct {
	mu    sync.Mutex
	locks map[model.EntityID]*slock

	// retired marks a stripe replaced by a resize. Written by grow while
	// holding mu (it holds every old stripe mutex across the swap), read
	// by lockStripe after locking mu — so a plain bool, no atomics on the
	// hot path.
	retired bool

	// ops counts slow-path operations against this stripe — the
	// contention signal the split probe samples. Guarded by mu (a plain
	// increment rides the mutex the operation already holds; the probe
	// briefly locks each stripe to sample). lastOps is the probe
	// goroutine's previous sample (touched only by it).
	ops     int64
	lastOps int64
}

type slock struct {
	xheld    bool
	xholder  InstKey
	xprio    int64
	sholders map[InstKey]int64 // identified shared holders -> prio; nil when none ever
	queue    []*waiter         // FIFO arrival order
}

// holds reports whether key currently holds the entity in an identified
// way (exclusive, or shared with the fast path off). Anonymous fast-path
// reader grants are a count, not a holder set, so they are invisible here
// by construction.
func (l *slock) holds(key InstKey) bool {
	if l.xheld && l.xholder == key {
		return true
	}
	_, ok := l.sholders[key]
	return ok
}

// grantable reports whether a request in the given mode is compatible
// with the identified holders (ignoring the queue — queue fairness is the
// caller's business; ignoring fast readers — grantableLocked folds those
// in).
func (l *slock) grantable(mode Mode) bool {
	if l.xheld {
		return false
	}
	return mode == Shared || len(l.sholders) == 0
}

// waiter is one parked request. The channel is buffered and receives at
// most one send — nil for a grant, ErrWounded for a wound — because both
// senders first remove the waiter from the queue under the stripe mutex.
type waiter struct {
	key  InstKey
	prio int64
	mode Mode
	ch   chan error
}

// resolveShards maps a Config.Shards value to an initial stripe count:
// an explicit positive count is honored; otherwise the count resolves
// from GOMAXPROCS (4x, rounded up to a power of two, clamped to
// [DefaultShards, 512]) so the table scales with the machine instead of
// a compile-time constant.
func resolveShards(n int) int {
	if n > 0 {
		return n
	}
	want := 4 * runtime.GOMAXPROCS(0)
	s := DefaultShards
	for s < want && s < 512 {
		s <<= 1
	}
	return s
}

// NewSharded builds the striped backend over the database. The table
// serves until Close.
func NewSharded(ddb *model.DDB, cfg Config) Table {
	initial := resolveShards(cfg.Shards)
	maxShards := initial
	switch {
	case cfg.MaxShards > initial:
		maxShards = cfg.MaxShards
	case cfg.Shards <= 0 && cfg.MaxShards == 0:
		// Adaptive by default: a GOMAXPROCS-resolved table may split up
		// to 8x when the probe sees a hot stripe. An explicit Shards pin
		// stays static unless MaxShards asks otherwise.
		maxShards = min(initial*8, 2048)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewTableMetrics()
	}
	t := &shardedTable{
		cfg:       cfg,
		m:         cfg.Metrics,
		tr:        cfg.Tracer,
		maxShards: maxShards,
		stop:      make(chan struct{}),
	}
	if !cfg.WoundWait && !cfg.Trace && !cfg.DisableSharedFastPath &&
		ddb != nil && ddb.NumEntities() > 0 && ddb.NumEntities() <= maxFastPathEntities {
		t.fast = make([]fastSlot, ddb.NumEntities())
	}
	t.set.Store(newStripeSet(initial))
	probeEvery := cfg.StripeProbe
	if probeEvery == 0 {
		probeEvery = 15 * time.Millisecond
	}
	if maxShards > initial && probeEvery > 0 {
		t.wg.Add(1)
		go t.probe(probeEvery)
	}
	return t
}

func newStripeSet(n int) *stripeSet {
	set := &stripeSet{stripes: make([]*stripe, n)}
	for i := range set.stripes {
		set.stripes[i] = &stripe{locks: map[model.EntityID]*slock{}}
	}
	return set
}

// stripeIndex hashes an entity to a stripe. Entity IDs are dense small
// integers, but callers commonly touch STRIDED subsets (every k-th
// entity), which a plain modulo folds onto the stripes sharing a factor
// with k; the Fibonacci multiplier scatters strides before the reduction.
func stripeIndex(ent model.EntityID, n int) int {
	h := uint64(ent) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(n))
}

// lockStripe resolves the entity's stripe under the CURRENT stripe set
// and returns it locked, bumping its contention counter. The retired
// re-check covers a resize racing the lookup: the stripe that was locked
// may have been retired, in which case the entity's state has moved and
// the lookup restarts against the new set.
func (t *shardedTable) lockStripe(ent model.EntityID) *stripe {
	for {
		set := t.set.Load()
		s := set.stripes[stripeIndex(ent, len(set.stripes))]
		s.mu.Lock()
		if !s.retired {
			s.ops++
			return s
		}
		s.mu.Unlock()
	}
}

func (s *stripe) lockState(e model.EntityID) *slock {
	l := s.locks[e]
	if l == nil {
		l = &slock{}
		s.locks[e] = l
	}
	return l
}

// fastCount returns the entity's current anonymous fast-reader count.
func (t *shardedTable) fastCount(ent model.EntityID) int64 {
	if t.fast == nil || int(ent) >= len(t.fast) {
		return 0
	}
	return t.fast[ent].state.Load() & fastCountMask
}

// setSlowMode sets the entity's slow-mode bit, fencing new fast readers
// onto the mutex path. Called under the entity's stripe mutex before any
// slow state is created, so the invariant holds: slow state implies the
// bit is set, hence a clear bit implies a shared CAS grant is safe.
func (t *shardedTable) setSlowMode(ent model.EntityID) {
	if t.fast == nil || int(ent) >= len(t.fast) {
		return
	}
	slot := &t.fast[ent].state
	for {
		st := slot.Load()
		if st&slowModeBit != 0 {
			return
		}
		if slot.CompareAndSwap(st, st|slowModeBit) {
			return
		}
	}
}

// clearSlowModeIfIdleLocked clears the slow-mode bit once the entity has
// no slow state left (no exclusive holder, no identified shared holders,
// no queue), re-arming the CAS fast path. Remaining fast readers are fine
// — a clear bit with a positive count is the normal fast mode. Caller
// holds the entity's stripe mutex.
func (t *shardedTable) clearSlowModeIfIdleLocked(ent model.EntityID, l *slock) {
	if t.fast == nil || int(ent) >= len(t.fast) {
		return
	}
	if l.xheld || len(l.sholders) > 0 || len(l.queue) > 0 {
		return
	}
	slot := &t.fast[ent].state
	for {
		st := slot.Load()
		if st&slowModeBit == 0 {
			return
		}
		if slot.CompareAndSwap(st, st&^slowModeBit) {
			return
		}
	}
}

func (t *shardedTable) Acquire(ctx context.Context, inst Instance, ent model.EntityID, mode Mode) error {
	select {
	case <-t.stop:
		return ErrStopped
	default:
	}
	if mode == Shared && t.fast != nil && int(ent) < len(t.fast) {
		// The atomic fast path: while the slow-mode bit is clear the
		// entity has no writer and no queue, so a shared grant is one CAS.
		slot := &t.fast[ent].state
		for {
			st := slot.Load()
			if st&slowModeBit != 0 {
				break // a writer (or queue) owns the entity: mutex path
			}
			if slot.CompareAndSwap(st, st+1) {
				// One striped inc, not two: FastHits implies a grant and
				// Snapshot folds it into the grant total.
				t.m.FastHits.Inc(uint64(inst.Key.ID))
				t.tr.Record(obs.EvGrant, int(ent), inst.Key.ID, inst.Key.Epoch, uint8(mode))
				return nil
			}
		}
	}
	s := t.lockStripe(ent)
	l := s.lockState(ent)
	if l.holds(inst.Key) {
		// Duplicate (sessions reject re-locks before they reach the table).
		s.mu.Unlock()
		return nil
	}
	// Any slow state about to be created (a grant or a queued waiter)
	// must be visible to the CAS path first, so late fast readers queue
	// FIFO instead of slipping past.
	t.setSlowMode(ent)
	if len(l.queue) == 0 && t.grantableLocked(ent, l, mode) {
		// Grant inline, no goroutine handoff. The queue must be empty — a
		// reader arriving behind a waiting writer parks behind it (FIFO
		// fairness), it does not slip past on compatibility.
		t.grantLocked(ent, l, inst.Key, inst.Prio, mode)
		t.clearSlowModeIfIdleLocked(ent, l)
		s.mu.Unlock()
		return nil
	}
	t.m.QueueDepth.Record(int64(len(l.queue)))
	w := &waiter{key: inst.Key, prio: inst.Prio, mode: mode, ch: make(chan error, 1)}
	l.queue = append(l.queue, w)
	if t.cfg.WoundWait && t.cfg.OnWound != nil {
		// An older requester wounds every CONFLICTING younger holder.
		// Delivered inside the critical section so the victims provably
		// still hold the entity — a Release racing the decision would
		// otherwise make the wound spurious (the actor backend decides and
		// wounds atomically in the site goroutine; match it). OnWound must
		// not call back into the table (see Config), so holding the stripe
		// is safe. (Wound-wait disables the fast path, so every shared
		// holder is identified here.)
		if l.xheld && inst.Prio < l.xprio {
			t.cfg.OnWound(l.xholder.ID)
		}
		if mode == Exclusive {
			for hk, hp := range l.sholders {
				if inst.Prio < hp {
					t.cfg.OnWound(hk.ID)
				}
			}
		}
	}
	s.mu.Unlock()
	select {
	case err := <-w.ch:
		return err // nil: granted; ErrWounded: withdrawn by Wound
	case <-ctx.Done():
		t.cancelWait(ent, w)
		return ctx.Err()
	case <-inst.Doomed:
		t.cancelWait(ent, w)
		return ErrWounded
	case <-t.stop:
		return ErrStopped
	}
}

// TryAcquire implements TryAcquirer: the inline-grant prefix of Acquire
// with a false return where Acquire would park. It never queues, so a
// false return has no side effect beyond the slow-mode fence Acquire
// itself would have set (and clears it again if the entity is idle).
func (t *shardedTable) TryAcquire(inst Instance, ent model.EntityID, mode Mode) (bool, error) {
	select {
	case <-t.stop:
		return false, ErrStopped
	default:
	}
	if mode == Shared && t.fast != nil && int(ent) < len(t.fast) {
		slot := &t.fast[ent].state
		for {
			st := slot.Load()
			if st&slowModeBit != 0 {
				break
			}
			if slot.CompareAndSwap(st, st+1) {
				// One striped inc, not two: FastHits implies a grant and
				// Snapshot folds it into the grant total.
				t.m.FastHits.Inc(uint64(inst.Key.ID))
				t.tr.Record(obs.EvGrant, int(ent), inst.Key.ID, inst.Key.Epoch, uint8(mode))
				return true, nil
			}
		}
	}
	s := t.lockStripe(ent)
	l := s.lockState(ent)
	if l.holds(inst.Key) {
		s.mu.Unlock()
		return true, nil
	}
	t.setSlowMode(ent)
	if len(l.queue) == 0 && t.grantableLocked(ent, l, mode) {
		t.grantLocked(ent, l, inst.Key, inst.Prio, mode)
		t.clearSlowModeIfIdleLocked(ent, l)
		s.mu.Unlock()
		return true, nil
	}
	t.clearSlowModeIfIdleLocked(ent, l)
	s.mu.Unlock()
	return false, nil
}

// cancelWait removes a parked request, or releases its grant when a grant
// raced the cancellation: whichever way the race went, the instance holds
// nothing on return. The stripe is re-resolved — the one the request was
// parked under may have been retired by a resize.
func (t *shardedTable) cancelWait(ent model.EntityID, w *waiter) {
	s := t.lockStripe(ent)
	defer s.mu.Unlock()
	l := s.lockState(ent)
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			// Removing a queued writer can unblock the readers parked
			// behind it (and vice versa): run the grant wave.
			t.grantWaveLocked(ent, l)
			t.clearSlowModeIfIdleLocked(ent, l)
			return
		}
	}
	// Not queued: a grant or a wound raced the cancellation. The waiter's
	// buffered channel already holds the outcome (both senders deliver it
	// before unqueueing, under this stripe's mutex), so consult it: a
	// grant is released — for an anonymous shared grant releaseLocked
	// decrements the fast-reader count it incremented — and a wound left
	// nothing held. Keying the release off the outcome (not just the
	// instance key) matters precisely because fast grants are anonymous:
	// a wounded waiter must not decrement some innocent reader's count.
	select {
	case err := <-w.ch:
		if err == nil {
			t.releaseLocked(ent, l, w.key)
		}
	default:
		// Unreachable: removal and delivery are atomic under the mutex.
	}
}

func (t *shardedTable) Release(ent model.EntityID, key InstKey) error {
	select {
	case <-t.stop:
		return ErrStopped
	default:
	}
	if t.fast != nil && int(ent) < len(t.fast) {
		// The atomic fast path: a clear slow-mode bit means no writer and
		// no queue, so a positive count can only be fast readers — one CAS
		// decrement releases. With the bit set the release must go through
		// the mutex (a draining reader may be the one unblocking a parked
		// writer).
		slot := &t.fast[ent].state
		for {
			st := slot.Load()
			if st&slowModeBit != 0 || st&fastCountMask == 0 {
				break
			}
			if slot.CompareAndSwap(st, st-1) {
				t.m.Releases.Inc(uint64(key.ID))
				return nil
			}
		}
	}
	s := t.lockStripe(ent)
	t.releaseLocked(ent, s.lockState(ent), key)
	s.mu.Unlock()
	return nil
}

// releaseLocked frees the entity if key holds it and grants to the next
// compatible waiters. With the fast path on, shared holders are an
// anonymous count: any release that is not the exclusive holder's and not
// an identified shared holder's is taken as one fast reader leaving while
// the count is positive (the session layer guarantees callers only
// release what they hold). Caller holds the stripe mutex.
func (t *shardedTable) releaseLocked(ent model.EntityID, l *slock, key InstKey) {
	wasExclusive := false
	switch {
	case l.xheld && l.xholder == key:
		l.xheld = false
		wasExclusive = true
	default:
		if _, ok := l.sholders[key]; ok {
			delete(l.sholders, key)
		} else if t.fastCount(ent) > 0 {
			t.fast[ent].state.Add(-1)
		} else {
			return
		}
	}
	t.m.Releases.Inc(uint64(key.ID))
	t.grantWaveLocked(ent, l)
	if !wasExclusive {
		// Hysteresis: a departing writer leaves the slow-mode bit SET even
		// when the entity goes idle, so write-dominated entities don't pay
		// a set/clear CAS pair on the fast slot per lock/unlock cycle. A
		// set bit with no slow state is always legal (merely conservative:
		// shared traffic takes the mutex path); the first mutex-path reader
		// that finds the entity idle clears it and re-arms the CAS path.
		t.clearSlowModeIfIdleLocked(ent, l)
	}
}

// grantWaveLocked drains the wait queue as far as compatibility allows:
// repeatedly pick the next waiter (FIFO, or oldest-first under
// wound-wait) and grant it if compatible with the current holders — so
// consecutive readers are granted as one wave, and a writer is granted
// exactly when the last incompatible holder left. Caller holds the
// stripe mutex.
func (t *shardedTable) grantWaveLocked(ent model.EntityID, l *slock) {
	for len(l.queue) > 0 {
		pick := pickNext(l.queue, func(w *waiter) int64 { return w.prio }, t.cfg.WoundWait)
		w := l.queue[pick]
		if !t.grantableLocked(ent, l, w.mode) {
			return
		}
		l.queue = append(l.queue[:pick], l.queue[pick+1:]...)
		t.grantLocked(ent, l, w.key, w.prio, w.mode)
		w.ch <- nil
	}
}

// grantableLocked folds the anonymous fast readers into the slock's
// compatibility check: an exclusive grant additionally requires the
// fast-reader count to have drained to zero. Caller holds the stripe
// mutex (and, for Exclusive, has set the slow-mode bit, so the count can
// only fall).
func (t *shardedTable) grantableLocked(ent model.EntityID, l *slock, mode Mode) bool {
	if !l.grantable(mode) {
		return false
	}
	return mode == Shared || t.fastCount(ent) == 0
}

// grantLocked records the holder. With the fast path on, a shared grant
// joins the anonymous reader count (so a reader wave granted past a
// departing writer re-arms the CAS path as soon as the queue empties)
// rather than the identified holder map. Caller holds the stripe mutex.
func (t *shardedTable) grantLocked(ent model.EntityID, l *slock, key InstKey, prio int64, mode Mode) {
	switch {
	case mode == Shared && t.fast != nil && int(ent) < len(t.fast):
		t.fast[ent].state.Add(1)
	case mode == Shared:
		if l.sholders == nil {
			l.sholders = map[InstKey]int64{}
		}
		l.sholders[key] = prio
	default:
		l.xheld = true
		l.xholder = key
		l.xprio = prio
	}
	hint := uint64(key.ID)
	t.m.Grants.Inc(hint)
	if mode == Shared {
		t.m.SlowShared.Inc(hint)
	}
	t.tr.Record(obs.EvGrant, int(ent), key.ID, key.Epoch, uint8(mode))
	if t.cfg.Trace {
		// Trace disables the fast path, so every grant lands here with its
		// identity. Lock order: stripe mutex (held), then traceMu.
		t.traceMu.Lock()
		t.traceLog = append(t.traceLog, GrantEvent{Entity: ent, Inst: key.ID, Epoch: key.Epoch, Mode: mode})
		t.traceMu.Unlock()
	}
}

// Withdraw removes the instance's pending request or identified grant.
// Anonymous fast-path shared grants are not attributable to a key, so
// they are invisible to Withdraw — their owners release through Release,
// which is the only caller contract the session layer uses.
func (t *shardedTable) Withdraw(ent model.EntityID, key InstKey) bool {
	s := t.lockStripe(ent)
	defer s.mu.Unlock()
	l := s.lockState(ent)
	if l.holds(key) {
		t.releaseLocked(ent, l, key)
		return true
	}
	for i, q := range l.queue {
		if q.key == key {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			// Leave the parked Acquire (if any) to its own select arms; a
			// direct Withdraw caller owns the request lifecycle. The queue
			// changed, so later compatible waiters may now be grantable.
			t.grantWaveLocked(ent, l)
			t.clearSlowModeIfIdleLocked(ent, l)
			break
		}
	}
	return false
}

// ReleaseAll releases the listed entities. Stripe operations are plain
// mutex sections, so there is nothing to pipeline — the loop is already
// round-trip free. Every failed release surfaces in the joined error,
// not just the last one.
func (t *shardedTable) ReleaseAll(ents []model.EntityID, key InstKey) error {
	var errs []error
	for _, ent := range ents {
		if e := t.Release(ent, key); e != nil {
			errs = append(errs, e)
		}
	}
	return errors.Join(errs...)
}

func (t *shardedTable) Wound(key InstKey) {
	// resizeMu pins the stripe set for the whole walk (lock order:
	// resizeMu, then stripe mutexes — same as a resize).
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	for _, s := range t.set.Load().stripes {
		s.mu.Lock()
		for ent, l := range s.locks {
			removed := false
			for i := 0; i < len(l.queue); {
				if l.queue[i].key != key {
					i++
					continue
				}
				w := l.queue[i]
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				w.ch <- ErrWounded
				t.m.Wounds.Inc()
				t.tr.Record(obs.EvWound, int(ent), w.key.ID, w.key.Epoch, uint8(w.mode))
				removed = true
			}
			if removed {
				// A withdrawn writer may have been the only thing blocking
				// the readers queued behind it.
				t.grantWaveLocked(ent, l)
				t.clearSlowModeIfIdleLocked(ent, l)
			}
		}
		s.mu.Unlock()
	}
}

func (t *shardedTable) Snapshot() []WaitEdge {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	var edges []WaitEdge
	for _, s := range t.set.Load().stripes {
		s.mu.Lock()
		for ent, l := range s.locks {
			anon := t.fastCount(ent)
			if !l.xheld && len(l.sholders) == 0 && anon == 0 {
				continue
			}
			for _, w := range l.queue {
				if l.xheld {
					edges = append(edges, WaitEdge{
						Waiter: w.key, Holder: l.xholder,
						WaiterPrio: w.prio, HolderPrio: l.xprio,
					})
				}
				for hk, hp := range l.sholders {
					edges = append(edges, WaitEdge{
						Waiter: w.key, Holder: hk,
						WaiterPrio: w.prio, HolderPrio: hp,
					})
				}
				if anon > 0 {
					// Anonymous fast readers: one edge against the sentinel
					// holder. The sentinel never waits, so it cannot close a
					// cycle — detectors that must attribute shared holders
					// disable the fast path instead (see Config).
					edges = append(edges, WaitEdge{
						Waiter: w.key, Holder: AnonReaderKey,
						WaiterPrio: w.prio,
					})
				}
			}
		}
		s.mu.Unlock()
	}
	return edges
}

func (t *shardedTable) GrantLog() []GrantEvent {
	t.traceMu.Lock()
	defer t.traceMu.Unlock()
	out := make([]GrantEvent, len(t.traceLog))
	copy(out, t.traceLog)
	return out
}

func (t *shardedTable) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.wg.Wait()
}

// probe is the adaptive-striping background tick: it samples the
// per-stripe contention counters and doubles the stripe set when one
// stripe absorbs a disproportionate share of meaningful traffic.
func (t *shardedTable) probe(every time.Duration) {
	defer t.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
		}
		t.maybeSplit()
	}
}

const (
	// probeMinOps is the minimum per-tick slow-path traffic before a
	// split is considered: idle or trickle tables never resize.
	probeMinOps = 512
	// A stripe is hot when its per-tick ops exceed 1.5x the mean
	// (max*splitSkewDen > mean*splitSkewNum). The mild threshold matters:
	// at 2 stripes the worst possible max/mean ratio is only 2.
	splitSkewNum = 3
	splitSkewDen = 2
)

// maybeSplit samples the stripe counters and grows the set on observed
// skew.
func (t *shardedTable) maybeSplit() {
	set := t.set.Load()
	var total, maxDelta int64
	for _, s := range set.stripes {
		s.mu.Lock()
		cur := s.ops
		s.mu.Unlock()
		d := cur - s.lastOps
		s.lastOps = cur
		total += d
		if d > maxDelta {
			maxDelta = d
		}
	}
	if len(set.stripes) >= t.maxShards || total < probeMinOps {
		return
	}
	mean := total / int64(len(set.stripes))
	if mean < 1 {
		mean = 1
	}
	if maxDelta*splitSkewDen <= mean*splitSkewNum {
		return
	}
	t.grow(set)
}

// grow installs a doubled stripe set: every old stripe mutex is held
// across the swap, so no slow-path operation can observe an entity in
// two homes, and in-flight lockStripe calls re-check the set pointer
// after locking (see lockStripe).
func (t *shardedTable) grow(old *stripeSet) {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	if t.set.Load() != old {
		return // a concurrent grow won
	}
	n := min(len(old.stripes)*2, t.maxShards)
	if n <= len(old.stripes) {
		return
	}
	for _, s := range old.stripes {
		s.mu.Lock()
	}
	next := newStripeSet(n)
	for _, s := range old.stripes {
		for ent, l := range s.locks {
			next.stripes[stripeIndex(ent, n)].locks[ent] = l
		}
	}
	t.set.Store(next)
	t.splits.Add(1)
	t.m.Splits.Inc()
	for _, s := range old.stripes {
		s.retired = true
		s.mu.Unlock()
	}
}

// StripeStats describes the sharded backend's observed stripe layout:
// the current stripe count, how many adaptive splits have happened, and
// the cumulative slow-path operation count per stripe (the contention
// signal the split probe samples) — the "report hot stripes" half of the
// adaptive story, for operators and tests.
type StripeStats struct {
	Stripes int
	Splits  int64
	Ops     []int64
}

// SampleStripes reports the table's StripeStats, or false if the table
// is not the sharded backend. Safe on a running table.
func SampleStripes(tab Table) (StripeStats, bool) {
	t, ok := tab.(*shardedTable)
	if !ok {
		return StripeStats{}, false
	}
	set := t.set.Load()
	st := StripeStats{
		Stripes: len(set.stripes),
		Splits:  t.splits.Load(),
		Ops:     make([]int64, len(set.stripes)),
	}
	for i, s := range set.stripes {
		s.mu.Lock()
		st.Ops[i] = s.ops
		s.mu.Unlock()
	}
	return st, true
}
