package netlock

import (
	"context"
	"net"
	"testing"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/workload"
)

func retryDDB(t *testing.T) *model.DDB {
	t.Helper()
	return workload.NewDDB(workload.Config{Sites: 2, EntitiesPerSite: 2})
}

// reservePort grabs a free loopback port and immediately releases it, so
// the test can dial an address that is briefly guaranteed unbound.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDialRetriesLateListener is the racing-startup scenario DialRetries
// exists for: the server binds its listener only after the client's first
// connect attempts have been refused, and the bounded retry loop must
// carry the dial through to a working session.
func TestDialRetriesLateListener(t *testing.T) {
	ddb := retryDDB(t)
	addr := reservePort(t)

	srvCh := make(chan *Server, 1)
	go func() {
		time.Sleep(250 * time.Millisecond)
		srv, err := NewServer(ddb, locktable.Config{}, ServerOptions{})
		if err != nil {
			t.Error(err)
			srvCh <- nil
			return
		}
		if err := srv.Listen(addr); err != nil {
			t.Error(err)
			srv.Close()
			srvCh <- nil
			return
		}
		srvCh <- srv
	}()

	cli, err := Dial(addr, ddb, locktable.Config{}, DialOptions{
		DialRetries:  10,
		RetryBackoff: 20 * time.Millisecond,
	})
	srv := <-srvCh
	if srv != nil {
		defer srv.Close()
	}
	if err != nil {
		t.Fatalf("dial with retries against a late-bound listener: %v", err)
	}
	defer cli.Close()

	// The surviving connection must be a real session, not just a socket.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	in := locktable.Instance{Key: locktable.InstKey{ID: 1}, Prio: 1}
	ent := model.EntityID(0)
	if err := cli.Acquire(ctx, in, ent, locktable.Exclusive); err != nil {
		t.Fatalf("acquire after retried dial: %v", err)
	}
	if err := cli.Release(ent, in.Key); err != nil {
		t.Fatalf("release after retried dial: %v", err)
	}
}

// TestDialNoRetriesFailsFast pins the default posture: without
// DialRetries the first refused connect is the answer, promptly.
func TestDialNoRetriesFailsFast(t *testing.T) {
	ddb := retryDDB(t)
	addr := reservePort(t)
	start := time.Now()
	if _, err := Dial(addr, ddb, locktable.Config{}, DialOptions{}); err == nil {
		t.Fatal("dial against an unbound port succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("no-retry dial took %v; want a fast failure", d)
	}
}

// TestDialRetriesExhausted pins the bound: a port that never binds fails
// after the retry budget, roughly within the backoff schedule's span.
func TestDialRetriesExhausted(t *testing.T) {
	ddb := retryDDB(t)
	addr := reservePort(t)
	start := time.Now()
	_, err := Dial(addr, ddb, locktable.Config{}, DialOptions{
		DialRetries:  3,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial against a never-bound port succeeded")
	}
	// Schedule: 10 + 20 + 40 = 70ms of backoff plus four connect attempts.
	if d := time.Since(start); d < 70*time.Millisecond {
		t.Fatalf("retries exhausted after only %v; backoff schedule not honored", d)
	}
}
