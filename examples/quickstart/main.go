// Quickstart: build two distributed transactions and test the pair with
// the paper's polynomial criteria — Theorem 3 (safe-and-deadlock-free in
// O(n²)) — then cross-check with the exhaustive Lemma-1 oracle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distlock"
)

func main() {
	// A two-site database: x at site1, y at site2.
	db := distlock.NewDDB()
	db.MustEntity("x", "site1")
	db.MustEntity("y", "site2")

	// T1 locks x, then y, then releases both — a totally ordered program.
	b1 := distlock.NewBuilder(db, "T1")
	lx := b1.Lock("x")
	ly := b1.Lock("y")
	ux := b1.Unlock("x")
	uy := b1.Unlock("y")
	b1.Chain(lx, ly, ux, uy)
	t1 := b1.MustFreeze()

	// T2 does the same in the same order: lock ordering discipline.
	b2 := distlock.NewBuilder(db, "T2")
	lx2 := b2.Lock("x")
	ly2 := b2.Lock("y")
	ux2 := b2.Unlock("x")
	uy2 := b2.Unlock("y")
	b2.Chain(lx2, ly2, ux2, uy2)
	t2 := b2.MustFreeze()

	// Theorem 3: O(n²) static test.
	rep := distlock.PairSafeDF(t1, t2)
	fmt.Printf("{T1, T2} safe and deadlock-free (Theorem 3): %v\n", rep.SafeDF)
	if rep.SafeDF {
		fmt.Printf("first common lock (condition 1's gate entity): %s\n",
			db.EntityName(rep.FirstLock))
	}

	// Cross-check with the exhaustive Lemma-1 oracle (exponential; fine
	// for this size).
	sys, err := distlock.NewSystem(db, t1, t2)
	if err != nil {
		log.Fatal(err)
	}
	ok, _, err := distlock.IsSafeAndDeadlockFreeBrute(sys, distlock.BruteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive oracle agrees: %v\n", ok == rep.SafeDF)

	// Now break the discipline: T3 locks y first. The pair {T1, T3} can
	// deadlock — and Theorem 3 rejects it.
	b3 := distlock.NewBuilder(db, "T3")
	ly3 := b3.Lock("y")
	lx3 := b3.Lock("x")
	uy3 := b3.Unlock("y")
	ux3 := b3.Unlock("x")
	b3.Chain(ly3, lx3, uy3, ux3)
	t3 := b3.MustFreeze()

	rep = distlock.PairSafeDF(t1, t3)
	fmt.Printf("\n{T1, T3} safe and deadlock-free: %v\n", rep.SafeDF)
	fmt.Printf("reason: %s\n", rep.Reason)

	// Exhibit the concrete deadlock.
	sys2, err := distlock.NewSystem(db, t1, t3)
	if err != nil {
		log.Fatal(err)
	}
	w, err := distlock.FindDeadlock(sys2, distlock.BruteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if w != nil {
		fmt.Print("deadlock witness:")
		for _, s := range w.Steps {
			fmt.Printf(" %s.%s", sys2.Txns[s.Txn].Name(), sys2.Txns[s.Txn].Label(s.Node))
		}
		fmt.Println(" — both transactions now wait forever")
	}
}
