// Command dlgen generates random transaction systems in dlcheck's text
// format — convenient for exploring the checkers on synthetic workloads:
//
//	dlgen -sites 3 -entities 6 -txns 4 -per-txn 3 -policy ordered -seed 7 > sys.txn
//	dlcheck sys.txn
package main

import (
	"flag"
	"fmt"
	"os"

	"distlock/internal/parse"
	"distlock/internal/workload"
)

func main() {
	sites := flag.Int("sites", 3, "number of database sites")
	entities := flag.Int("entities", 6, "total number of entities (spread round-robin over sites)")
	txns := flag.Int("txns", 4, "number of transactions")
	perTxn := flag.Int("per-txn", 3, "entities accessed per transaction")
	policy := flag.String("policy", "ordered", "locking policy: random, twophase, ordered")
	cross := flag.Float64("cross", 0.3, "cross-site arc probability (random policy)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	pol, ok := map[string]workload.Policy{
		"random": workload.PolicyRandom, "twophase": workload.PolicyTwoPhase,
		"ordered": workload.PolicyOrdered,
	}[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "dlgen: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if *sites < 1 || *entities < *sites {
		fmt.Fprintln(os.Stderr, "dlgen: need at least one entity per site")
		os.Exit(2)
	}
	sys, err := workload.Generate(workload.Config{
		Sites: *sites, EntitiesPerSite: *entities / *sites, NumTxns: *txns,
		EntitiesPerTxn: *perTxn, Policy: pol, CrossArcProb: *cross, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlgen:", err)
		os.Exit(1)
	}
	if err := parse.Write(os.Stdout, sys); err != nil {
		fmt.Fprintln(os.Stderr, "dlgen:", err)
		os.Exit(1)
	}
}
