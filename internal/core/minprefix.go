package core

import (
	"distlock/internal/graph"
	"distlock/internal/model"
)

// PairSafeDFMinimalPrefix is the O(n³) algorithm of Section 5 that precedes
// Theorem 3: it decides whether a pair of distributed transactions is safe
// and deadlock-free by testing, for each common entity y, whether a
// violating pair of linear extensions exists, via the minimal-prefix
// construction:
//
//  1. initialize V1 to the nodes that precede Ly in T1;
//  2. while there is a z ∈ R_T2(Ly) such that V1 contains Lz but not Uz,
//     add Uz and all its predecessors to V1.
//
// A violating extension t1 (one with L_t1(Ly) ∩ R_t2(Ly) = ∅ against the
// minimal t2) exists iff the resulting minimal prefix does not contain Ly.
//
// It must agree with PairSafeDF on every input — including mixed
// shared/exclusive modes, where both algorithms work over the conflicting
// common entities only; the two are validated against each other and
// against the Lemma-1 brute force in tests.
func PairSafeDFMinimalPrefix(t1, t2 *model.Transaction) bool {
	conflicting := model.ConflictingEntities(t1, t2)
	if len(conflicting) == 0 {
		return true
	}
	x, ok := firstCommonLock(t1, t2, conflicting)
	if !ok {
		return false
	}
	for _, y := range conflicting {
		if y == x {
			continue
		}
		if violatingExtensionExists(t1, t2, y) || violatingExtensionExists(t2, t1, y) {
			return false
		}
	}
	return true
}

// violatingExtensionExists reports whether there are linear extensions
// t1 ∈ T1, t2 ∈ T2 with L_t1(Ly) ∩ R_t2(Ly) = ∅, using the minimal-prefix
// algorithm. The adversarial t2 is fixed to the extension that executes
// before Ly only the steps preceding Ly in T2, so R_t2(Ly) = R_T2(Ly).
func violatingExtensionExists(t1, t2 *model.Transaction, y model.EntityID) bool {
	ly1, ok1 := t1.LockNode(y)
	ly2, ok2 := t2.LockNode(y)
	if !ok1 || !ok2 {
		return false
	}
	// Z = R_T2(Ly) restricted to entities CONFLICTING between the pair:
	// only a conflicting hold of T1's can force T2's Ly to wait, so only
	// those entities serialize the race to y.
	z := map[model.EntityID]bool{}
	for _, e := range t2.RT(ly2) {
		if model.Conflicts(t1, t2, e) {
			z[e] = true
		}
	}

	// Minimal prefix V1 of T1 satisfying:
	//   (a) V1 ⊇ predecessors of Ly in T1,
	//   (b) for z ∈ Z: Lz ∈ V1 ⟹ Uz ∈ V1.
	v1 := graph.NewBitset(t1.N())
	v1.Or(t1.Preds(ly1))
	for changed := true; changed; {
		changed = false
		for _, e := range t1.Entities() {
			if !z[e] {
				continue
			}
			lz, _ := t1.LockNode(e)
			uz, _ := t1.UnlockNode(e)
			if v1.Has(int(lz)) && !v1.Has(int(uz)) {
				v1.Set(int(uz))
				v1.Or(t1.Preds(uz))
				changed = true
			}
		}
	}
	// A violating t1 exists iff the minimal prefix avoids Ly (property (c)).
	return !v1.Has(int(ly1))
}
