package core

import (
	"testing"

	"distlock/internal/model"
	"distlock/internal/workload"
)

func TestPairSafeDFOrderedChains(t *testing.T) {
	sys := orderedSystem()
	rep := PairSafeDF(sys.Txns[0], sys.Txns[1])
	if !rep.SafeDF {
		t.Fatalf("ordered pair rejected: %s", rep.Reason)
	}
	if sys.DDB.EntityName(rep.FirstLock) != "x" {
		t.Fatalf("first lock = %v, want x", rep.FirstLock)
	}
}

func TestPairSafeDFCrossLockFailsCondition1(t *testing.T) {
	sys := crossLockSystem()
	rep := PairSafeDF(sys.Txns[0], sys.Txns[1])
	if rep.SafeDF {
		t.Fatal("cross-lock pair accepted")
	}
	if rep.FirstLock != -1 {
		t.Fatalf("condition (1) should fail, got first lock %v", rep.FirstLock)
	}
}

func TestPairSafeDFCondition2Failure(t *testing.T) {
	// Both lock x first, but T1 releases x before locking y: nothing guards
	// y, so interleavings are unsafe. R = {x, y}; L_T1(Ly) = ∅.
	d := xyDB()
	t1 := buildChain(d, "T1", "Lx Ux Ly Uy")
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	rep := PairSafeDF(t1, t2)
	if rep.SafeDF {
		t.Fatal("unguarded pair accepted")
	}
	if rep.FirstLock == -1 {
		t.Fatal("condition (1) should hold (x first in both)")
	}
}

func TestPairSafeDFNoCommonEntities(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("a", "s1")
	d.MustEntity("b", "s2")
	t1 := buildChain(d, "T1", "La Ua")
	t2 := buildChain(d, "T2", "Lb Ub")
	if rep := PairSafeDF(t1, t2); !rep.SafeDF {
		t.Fatalf("disjoint pair rejected: %s", rep.Reason)
	}
}

func TestPairSafeDFSingleCommonEntity(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("a", "s1")
	d.MustEntity("b", "s2")
	d.MustEntity("c", "s3")
	t1 := buildChain(d, "T1", "La Lb Ua Ub")
	t2 := buildChain(d, "T2", "Lb Lc Ub Uc")
	if rep := PairSafeDF(t1, t2); !rep.SafeDF {
		t.Fatalf("single-common-entity pair rejected: %s", rep.Reason)
	}
}

// TestPairAgreementWithBrute cross-validates Theorem 3 and the O(n³)
// minimal-prefix algorithm against the Lemma-1 exhaustive oracle on random
// two-transaction systems of every policy.
func TestPairAgreementWithBrute(t *testing.T) {
	cases := 0
	disagreeable := 0
	for seed := int64(0); seed < 120; seed++ {
		for _, policy := range []workload.Policy{workload.PolicyRandom, workload.PolicyTwoPhase, workload.PolicyOrdered} {
			sys := workload.MustGenerate(workload.Config{
				Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
				Policy: policy, CrossArcProb: 0.4, Seed: seed,
			})
			want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotThm3 := PairSafeDF(sys.Txns[0], sys.Txns[1]).SafeDF
			gotMin := PairSafeDFMinimalPrefix(sys.Txns[0], sys.Txns[1])
			if gotThm3 != want {
				t.Fatalf("seed %d policy %v: Theorem 3 says %v, brute force says %v\nT1=%v\nT2=%v",
					seed, policy, gotThm3, want, sys.Txns[0], sys.Txns[1])
			}
			if gotMin != want {
				t.Fatalf("seed %d policy %v: minimal-prefix says %v, brute force says %v\nT1=%v\nT2=%v",
					seed, policy, gotMin, want, sys.Txns[0], sys.Txns[1])
			}
			cases++
			if !want {
				disagreeable++
			}
		}
	}
	if disagreeable == 0 {
		t.Fatal("workload produced no unsafe pairs — test has no discriminating power")
	}
	if disagreeable == cases {
		t.Fatal("workload produced no safe pairs — test has no discriminating power")
	}
}

// TestPairTheorem3EqualsMinimalPrefixLarger compares the two polynomial
// algorithms on larger random pairs where brute force is infeasible.
func TestPairTheorem3EqualsMinimalPrefixLarger(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 3, EntitiesPerSite: 3, NumTxns: 2, EntitiesPerTxn: 6,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.5, Seed: seed,
		})
		a := PairSafeDF(sys.Txns[0], sys.Txns[1]).SafeDF
		b := PairSafeDFMinimalPrefix(sys.Txns[0], sys.Txns[1])
		if a != b {
			t.Fatalf("seed %d: Theorem 3 %v vs minimal-prefix %v\nT1=%v\nT2=%v",
				seed, a, b, sys.Txns[0], sys.Txns[1])
		}
	}
}

func TestFirstCommonLockUnique(t *testing.T) {
	sys := orderedSystem()
	common := model.CommonEntities(sys.Txns[0], sys.Txns[1])
	x, ok := firstCommonLock(sys.Txns[0], sys.Txns[1], common)
	if !ok {
		t.Fatal("no first common lock in ordered system")
	}
	if sys.DDB.EntityName(x) != "x" {
		t.Fatalf("first common lock = %v", x)
	}
}
