package graph

import (
	"math/rand"
	"testing"
)

func TestTopoSortChain(t *testing.T) {
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("chain reported cyclic")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want identity", order)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(2, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic = true on a cycle")
	}
}

func TestTopoSortRespectsArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		g := NewDigraph(n)
		// Random DAG: arcs only from lower to higher index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddArc(u, v)
				}
			}
		}
		order, ok := g.TopoSort()
		if !ok {
			t.Fatal("DAG reported cyclic")
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				if pos[u] >= pos[v] {
					t.Fatalf("arc %d->%d violated by order %v", u, v, order)
				}
			}
		}
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := NewDigraph(2)
	g.AddArc(1, 1)
	if g.IsAcyclic() {
		t.Fatal("self-loop not detected as cycle")
	}
	cyc := g.FindCycle()
	if len(cyc) != 1 || cyc[0] != 1 {
		t.Fatalf("FindCycle = %v, want [1]", cyc)
	}
}

func TestFindCycleReturnsRealCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(15)
		g := NewDigraph(n)
		for i := 0; i < n*2; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		cyc := g.FindCycle()
		if cyc == nil {
			if !g.IsAcyclic() {
				t.Fatal("FindCycle nil but graph cyclic")
			}
			continue
		}
		if g.IsAcyclic() {
			t.Fatal("FindCycle non-nil but graph acyclic")
		}
		for i, u := range cyc {
			v := cyc[(i+1)%len(cyc)]
			if !g.HasArc(u, v) {
				t.Fatalf("reported cycle %v missing arc %d->%d", cyc, u, v)
			}
		}
	}
}

func TestDuplicateArcsIgnored(t *testing.T) {
	g := NewDigraph(2)
	g.AddArc(0, 1)
	g.AddArc(0, 1)
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", g.NumArcs())
	}
	if len(g.Out(0)) != 1 || len(g.In(1)) != 1 {
		t.Fatal("adjacency lists contain duplicates")
	}
}

func TestTransitiveClosureDiamond(t *testing.T) {
	//     0
	//    / \
	//   1   2
	//    \ /
	//     3
	g := NewDigraph(4)
	g.AddArc(0, 1)
	g.AddArc(0, 2)
	g.AddArc(1, 3)
	g.AddArc(2, 3)
	tc := g.TransitiveClosure()
	if !tc[0].Has(3) || !tc[0].Has(1) || !tc[0].Has(2) {
		t.Fatalf("closure of 0 = %v", tc[0])
	}
	if tc[0].Has(0) {
		t.Fatal("node reaches itself in a DAG closure")
	}
	if tc[3].Count() != 0 {
		t.Fatalf("sink has non-empty closure %v", tc[3])
	}
	if tc[1].Has(2) || tc[2].Has(1) {
		t.Fatal("incomparable nodes appear related")
	}
}

func TestTransitiveClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		g := NewDigraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					g.AddArc(u, v)
				}
			}
		}
		tc := g.TransitiveClosure()
		for u := 0; u < n; u++ {
			seen := make([]bool, n)
			stack := append([]int(nil), g.Out(u)...)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[v] {
					continue
				}
				seen[v] = true
				stack = append(stack, g.Out(v)...)
			}
			for v := 0; v < n; v++ {
				if tc[u].Has(v) != seen[v] {
					t.Fatalf("closure[%d].Has(%d) = %v, BFS %v", u, v, tc[u].Has(v), seen[v])
				}
			}
		}
	}
}

func TestTransitiveClosureCyclicGraph(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(1, 2)
	tc := g.TransitiveClosure()
	if !tc[0].Has(0) || !tc[0].Has(1) || !tc[0].Has(2) {
		t.Fatalf("closure of 0 in cyclic graph = %v", tc[0])
	}
	if tc[2].Count() != 0 {
		t.Fatalf("sink closure = %v", tc[2])
	}
}

func TestSCC(t *testing.T) {
	// 0<->1 -> 2<->3 -> 4
	g := NewDigraph(5)
	g.AddArc(0, 1)
	g.AddArc(1, 0)
	g.AddArc(1, 2)
	g.AddArc(2, 3)
	g.AddArc(3, 2)
	g.AddArc(3, 4)
	comps := g.SCC()
	if len(comps) != 3 {
		t.Fatalf("got %d SCCs, want 3: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Fatalf("SCC sizes wrong: %v", comps)
	}
}

func TestSCCAcyclicAllSingletons(t *testing.T) {
	g := NewDigraph(6)
	g.AddArc(0, 1)
	g.AddArc(1, 2)
	g.AddArc(0, 3)
	g.AddArc(3, 4)
	comps := g.SCC()
	if len(comps) != 6 {
		t.Fatalf("got %d SCCs, want 6", len(comps))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1)
	c := g.Clone()
	c.AddArc(1, 2)
	if g.HasArc(1, 2) {
		t.Fatal("Clone shares arc storage")
	}
	if !c.HasArc(0, 1) {
		t.Fatal("Clone lost arc")
	}
}
