// Package netlock is the cross-process lock-table backend: a server that
// hosts any in-process locktable.Table (actor or sharded) behind a
// length-prefixed binary request/response protocol, and a client that
// implements the full locktable.Table interface over the wire. The session
// layer, the service tiers, and the conformance suite run unchanged on
// top of it — the Table interface is the contract, the network is an
// implementation detail behind it.
//
// What the in-process backends get for free, the networked one must earn:
//
//   - Per-connection session identity. Each connection is a session; the
//     server namespaces client instance keys by connection (the client's
//     instance ID occupies the low 32 bits of the server-side key, the
//     connection ID the high bits), so engines in different processes can
//     both number their instances from 1 without colliding in the shared
//     table.
//
//   - Leases. A holder in another process can crash, hang, or partition
//     away while holding locks. Every connection holds a lease, renewed by
//     heartbeats; when a connection disconnects, or stays silent past its
//     lease, the server revokes it — pending acquires are withdrawn and
//     granted locks are released to their next waiters.
//
//   - Fencing. Revocation alone is not enough: a revoked holder's release,
//     already in flight (or sent after the holder un-stalls), could free a
//     lock the server has since re-granted to someone else. Every grant
//     therefore carries a fencing token from a per-entity counter bumped on
//     each grant, releases must present the token they were granted, and a
//     stale token is rejected (ErrStaleFence) — a lease-expired holder's
//     late release can never free a re-granted lock.
//
//   - Server-push wound delivery. Under wound-wait the grant path decides
//     to wound a holder that may live in another process: the server pushes
//     a wound event to the connection owning the holder, where the client
//     invokes its Config.OnWound exactly as an in-process backend would.
//
// Context cancellation maps to withdrawal exactly as in process: a
// cancelled client Acquire sends a cancel for its in-flight request, the
// server cancels the server-side acquire context (which withdraws the
// request from the inner table), and if a grant raced the cancellation the
// client releases it before returning — the instance holds nothing on a
// non-nil return.
package netlock

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"distlock/internal/locktable"
	"distlock/internal/model"
)

// protocolVersion guards against skew between client and server builds.
// Version history:
//
//	1 — exclusive-only locks (PR 4).
//	2 — shared/exclusive lock modes: opAcquire carries a mode byte and
//	    grant-log events carry the granted mode. A v1 peer would silently
//	    treat every lock as exclusive (or mis-parse the extra byte), so
//	    the handshake rejects the mismatch instead.
const protocolVersion = 2

// maxFrame bounds a frame body; larger frames indicate a corrupt stream.
const maxFrame = 16 << 20

// Message opcodes. Client→server requests carry a request ID the matching
// opResult echoes; opWoundPush is the one server-initiated message.
const (
	opHello      = 0x01 // version, woundWait, trace, ddb hash
	opAcquire    = 0x02 // reqID, inst key, prio, entity, mode
	opCancel     = 0x03 // reqID of the in-flight acquire to withdraw
	opRelease    = 0x04 // reqID, entity, inst key, fencing token
	opReleaseAll = 0x05 // reqID, inst key, n × (entity, fencing token)
	opWithdraw   = 0x06 // reqID, entity, inst key
	opWound      = 0x07 // reqID, inst key
	opSnapshot   = 0x08 // reqID
	opGrantLog   = 0x09 // reqID
	opHeartbeat  = 0x0a // reqID (renews the lease)

	opResult    = 0x80 // reqID, status, payload per request kind
	opWoundPush = 0x81 // holder's client-side instance ID
)

// Result statuses.
const (
	stOK           = 0x00
	stWounded      = 0x01 // acquire: withdrawn by a wound
	stStopped      = 0x02 // server shutting down
	stCancelled    = 0x03 // acquire: withdrawn by the client's cancel
	stStaleFence   = 0x04 // release: fencing token no longer current
	stLeaseExpired = 0x05 // acquire/release: the connection's lease was revoked
	stErr          = 0x06 // payload: error string
)

// ErrStaleFence is returned by Release when the presented fencing token is
// no longer the entity's current grant: the holder's lease expired and the
// lock was revoked (and possibly re-granted) in the meantime. The release
// did not free anything.
var ErrStaleFence = errors.New("netlock: stale fencing token (lease expired; lock revoked)")

// ErrLeaseExpired is returned by a blocked Acquire when the server revoked
// the connection's lease while the request waited: the request was
// withdrawn, and any locks the session held are gone. The connection
// itself may still be alive — the next heartbeat starts a fresh lease —
// but the session's grants did not survive.
var ErrLeaseExpired = errors.New("netlock: lease expired while waiting (request withdrawn, held locks revoked)")

// DDBHash fingerprints a database: sites and entities, names and
// placement, in ID order. Client and server exchange it in the handshake
// so a client built over a different database (entity IDs meaning
// different things) is rejected instead of silently corrupting grants.
func DDBHash(d *model.DDB) [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		io.WriteString(h, s)
	}
	writeInt(d.NumSites())
	for s := 0; s < d.NumSites(); s++ {
		writeStr(d.SiteName(model.SiteID(s)))
	}
	writeInt(d.NumEntities())
	for e := 0; e < d.NumEntities(); e++ {
		writeStr(d.EntityName(model.EntityID(e)))
		writeInt(int(d.SiteOf(model.EntityID(e))))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// composeKey namespaces a client instance key by its connection: the
// connection ID occupies the high 32 bits of the server-side instance ID.
// Client instance IDs must fit in 32 bits (engine IDs are small dense
// integers; the handshake documents the bound).
func composeKey(connID uint32, k locktable.InstKey) locktable.InstKey {
	return locktable.InstKey{
		ID:    int(int64(connID)<<32 | int64(uint32(k.ID))),
		Epoch: k.Epoch,
	}
}

// stripID translates a composed server-side instance ID back to the
// client-side ID if it belongs to the given connection; foreign IDs (other
// connections' sessions) are returned composed, which keeps them distinct
// from every local ID.
func stripID(connID uint32, id int) (int, bool) {
	if uint32(uint64(id)>>32) == connID {
		return int(uint32(id)), true
	}
	return id, false
}

// writeFrame sends one length-prefixed frame. Callers serialize writes per
// connection.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netlock: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// appendFrame appends one length-prefixed frame to dst. The flush loops
// keep each connection's pending output as a single flat byte buffer —
// frames are appended under the queue mutex and the writer swaps the
// whole buffer out and writes it in one call — so a frame on the hot
// path costs a memcpy, not a heap-allocated []byte plus a queue slot.
func appendFrame(dst, body []byte) []byte {
	n := uint32(len(body))
	return append(append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n)), body...)
}

// encPool recycles the scratch encoders of the fixed-shape per-op frames
// (requests, status replies): the body is copied into the connection's
// pending buffer by appendFrame, so the encoder is free for reuse the
// moment the enqueue returns.
var encPool = sync.Pool{New: func() any { return &enc{b: make([]byte, 0, 128)} }}

// readFrameInto reads one length-prefixed frame into *buf, growing it as
// needed. The returned slice aliases *buf and is valid only until the
// next call — for read loops that fully consume each frame before the
// next (the per-op hot path reads tens of thousands of small frames a
// second; reusing one buffer removes an allocation per frame).
func readFrameInto(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netlock: frame of %d bytes exceeds limit", n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// enc builds a frame body. All integers are big-endian fixed width; the
// messages are small and fixed-shape, so varints would buy nothing.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec consumes a frame body. The first malformed read poisons the decoder;
// callers check err once at the end (a short frame yields zero values, and
// the single check rejects the message).
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errors.New("netlock: truncated frame")
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) boolean() bool { return d.u8() != 0 }
func (d *dec) raw(n int) []byte {
	if d.err != nil || len(d.b) < n {
		d.fail()
		return make([]byte, n)
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	return string(d.raw(n))
}

// mode encodes/decodes a lock mode as one byte.
func (e *enc) mode(m locktable.Mode) { e.u8(byte(m)) }

func (d *dec) mode() locktable.Mode {
	b := d.u8()
	if b > byte(locktable.Shared) {
		d.fail()
		return locktable.Exclusive
	}
	return locktable.Mode(b)
}

// key encodes/decodes an instance key (client-side numbering on the wire;
// composition is server business).
func (e *enc) key(k locktable.InstKey) {
	e.i64(int64(k.ID))
	e.i64(int64(k.Epoch))
}

func (d *dec) key() locktable.InstKey {
	id := d.i64()
	ep := d.i64()
	return locktable.InstKey{ID: int(id), Epoch: int(ep)}
}

// edges encodes a snapshot result.
func (e *enc) edges(es []locktable.WaitEdge) {
	e.u32(uint32(len(es)))
	for _, ed := range es {
		e.key(ed.Waiter)
		e.i64(ed.WaiterPrio)
		e.key(ed.Holder)
		e.i64(ed.HolderPrio)
	}
}

func (d *dec) edges() []locktable.WaitEdge {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		d.fail()
		return nil
	}
	out := make([]locktable.WaitEdge, 0, n)
	for i := 0; i < n; i++ {
		var ed locktable.WaitEdge
		ed.Waiter = d.key()
		ed.WaiterPrio = d.i64()
		ed.Holder = d.key()
		ed.HolderPrio = d.i64()
		out = append(out, ed)
	}
	return out
}

// events encodes a grant-log result.
func (e *enc) events(evs []locktable.GrantEvent) {
	e.u32(uint32(len(evs)))
	for _, ev := range evs {
		e.i64(int64(ev.Entity))
		e.i64(int64(ev.Inst))
		e.i64(int64(ev.Epoch))
		e.mode(ev.Mode)
	}
}

func (d *dec) events() []locktable.GrantEvent {
	n := int(d.u32())
	if d.err != nil || n > maxFrame/25 {
		d.fail()
		return nil
	}
	out := make([]locktable.GrantEvent, 0, n)
	for i := 0; i < n; i++ {
		var ev locktable.GrantEvent
		ev.Entity = model.EntityID(d.i64())
		ev.Inst = int(d.i64())
		ev.Epoch = int(d.i64())
		ev.Mode = d.mode()
		out = append(out, ev)
	}
	return out
}
