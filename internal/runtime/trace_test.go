package runtime

import (
	"context"
	"testing"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
	"distlock/internal/obs"
)

// Sampled end-to-end op tracing: arming rules, span integrity across
// every backend the sampler threads through (in-process sharded, netlock
// loopback sync and pipelined, 2-server cluster), and the fast-path
// regression gate proving default-rate sampling does not disarm the
// sharded table's CAS shared fast path.

func TestTraceSamplingArming(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "s1")

	off, err := NewEngine(d, EngineOptions{Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.spans != nil || off.Spans() != nil || off.StageLatency() != nil {
		t.Fatal("tracing armed without TraceSampleEvery")
	}

	def, err := NewEngine(d, EngineOptions{Strategy: StrategyNone, TraceSampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if def.spans == nil || def.spanEvery != DefaultTraceSample {
		t.Fatalf("negative rate: spanEvery = %d, want default %d", def.spanEvery, DefaultTraceSample)
	}

	exp, err := NewEngine(d, EngineOptions{Strategy: StrategyNone, TraceSampleEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if exp.spans == nil || exp.spanEvery != 7 {
		t.Fatalf("explicit rate: spanEvery = %d, want 7", exp.spanEvery)
	}
}

// traceFixture builds a sample-everything certified engine on the given
// wiring. servers == 0 is the in-process sharded table; 1 dials one
// loopback netlock server; >1 a hash-partitioned cluster of that many.
func traceFixture(t *testing.T, servers, depth int) (*Engine, *model.DDB) {
	t.Helper()
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	opts := EngineOptions{Strategy: StrategyNone, TraceSampleEvery: 1, PipelineDepth: depth}
	if servers > 0 {
		var addrs []string
		for i := 0; i < servers; i++ {
			srv, err := netlock.NewServer(d, locktable.Config{}, netlock.ServerOptions{Lease: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Listen("127.0.0.1:0"); err != nil {
				srv.Close()
				t.Fatal(err)
			}
			t.Cleanup(srv.Close)
			addrs = append(addrs, srv.Addr())
		}
		if servers == 1 {
			opts.Backend, opts.RemoteAddr = BackendRemote, addrs[0]
		} else {
			opts.Backend, opts.RemoteAddrs = BackendCluster, addrs
		}
	}
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, d
}

// TestTraceSpanIntegrity is the conformance gate over every sampled
// transport: with sampling at 1-in-1, drive certified sessions end to
// end and require (a) at least one span recorded, never more than the
// number of session ops, (b) every decoded span monotone with
// non-negative present stages, and (c) on wire transports, at least one
// acquire span complete from submit through wakeup — the full waterfall
// including the server stages carried back on the reply.
func TestTraceSpanIntegrity(t *testing.T) {
	cases := []struct {
		name    string
		servers int
		depth   int
		full    bool // expect complete submit→wakeup acquire spans
	}{
		{"sharded", 0, 0, false},
		{"netlock-sync", 1, 0, true},
		{"netlock-pipelined", 1, 8, true},
		{"cluster2", 2, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, d := traceFixture(t, tc.servers, tc.depth)
			tmpl := buildChain(d, "A", "Lx Ly Ux Uy")
			x, y := ent(t, d, "x"), ent(t, d, "y")

			const txns = 50
			ctx := context.Background()
			for i := 0; i < txns; i++ {
				s, err := e.Begin(tmpl)
				if err != nil {
					t.Fatal(err)
				}
				for _, eid := range []model.EntityID{x, y} {
					if err := s.Lock(ctx, eid, model.Exclusive); err != nil {
						t.Fatalf("txn %d: Lock(%v) = %v", i, eid, err)
					}
				}
				for _, eid := range []model.EntityID{x, y} {
					if err := s.Unlock(eid); err != nil {
						t.Fatalf("txn %d: Unlock(%v) = %v", i, eid, err)
					}
				}
				if err := s.Commit(); err != nil {
					t.Fatalf("txn %d: Commit = %v", i, err)
				}
			}

			const ops = txns * 4 // 2 acquires + 2 releases per txn
			rec := e.spans.Recorded()
			if rec == 0 {
				t.Fatal("sampling at 1-in-1 recorded no spans")
			}
			if rec > ops {
				t.Fatalf("recorded %d spans for %d ops", rec, ops)
			}

			spans := e.spans.Spans()
			fullAcquires := 0
			for _, r := range spans {
				prev := int64(0)
				for s := 0; s < obs.NumStages; s++ {
					v := r.Stages[s]
					if v < 0 {
						continue
					}
					if v < prev {
						t.Fatalf("non-monotone span: stage %v at %d after %d (%+v)", obs.Stage(s), v, prev, r)
					}
					prev = v
				}
				if r.Total() < 0 {
					t.Fatalf("negative total: %+v", r)
				}
				// A full client-side waterfall runs submit through
				// reply_enqueue plus the wakeup; reply_flush exists only on
				// server-side spans (the server cannot know its flush time
				// when it encodes the reply).
				if r.Kind == obs.SpanAcquire &&
					r.Complete(obs.StageSubmit, obs.StageReplyEnqueue) && r.Stages[obs.StageWakeup] >= 0 {
					fullAcquires++
				}
				if tc.servers == 0 {
					// In-process: no wire, so no server stages may appear.
					for _, s := range []obs.Stage{obs.StageServerRecv, obs.StageChainStart, obs.StageReplyEnqueue} {
						if r.Stages[s] >= 0 {
							t.Fatalf("server stage %v on an in-process span: %+v", s, r)
						}
					}
				}
			}
			if tc.full && fullAcquires == 0 {
				t.Fatal("no acquire span completed the full submit→wakeup waterfall over the wire")
			}
			if e.StageLatency() == nil {
				t.Fatal("stage histograms empty after a traced run")
			}
		})
	}
}

// TestTraceSamplingKeepsFastPath is the PR's fast-path regression gate,
// the sampling analogue of locktable's TestShardedTracerKeepsFastPath:
// an 8-reader crowd hammering one hot entity on a default-rate sampled
// certified engine must keep taking the CAS shared fast path
// (FastPathHits > 0) — arming the sampler must not flip the table into
// holder-tracking mode.
func TestTraceSamplingKeepsFastPath(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("h", "s0")
	m := obs.NewTableMetrics()
	e, err := NewEngine(d, EngineOptions{
		Strategy:         StrategyNone,
		Backend:          BackendSharded,
		Metrics:          m,
		TraceSampleEvery: -1, // default rate
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	b := model.NewBuilder(d, "R")
	l := b.LockShared("h")
	u := b.Unlock("h")
	b.Arc(l, u)
	tmpl := b.MustFreeze()
	h := ent(t, d, "h")

	const readers, iters = 8, 50
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		go func() {
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				s, err := e.Begin(tmpl)
				if err != nil {
					errs <- err
					return
				}
				if err := s.Lock(ctx, h, model.Shared); err != nil {
					errs <- err
					return
				}
				if err := s.Unlock(h); err != nil {
					errs <- err
					return
				}
				if err := s.Commit(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < readers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	s := m.Snapshot()
	if s.FastPathHits == 0 {
		t.Fatal("default-rate sampling disarmed the CAS shared fast path: zero fast-path hits under a pure reader crowd")
	}
	if s.Grants != readers*iters {
		t.Fatalf("grants = %d, want %d", s.Grants, readers*iters)
	}
	// The deterministic session-id seeding must have sampled some of the
	// 400 one-lock sessions at the aggregate 1-in-64 rate.
	if e.spans.Recorded() == 0 {
		t.Fatal("default-rate sampling recorded no spans across 400 sessions")
	}
}
