// Package cluster is the partitioned lock space: a locktable.Table that
// hash-routes each entity to one of N netlock servers, lifting the
// sharded backend's striping idiom one level up — the stripes become
// whole dlserver processes. K independent servers jointly serve one
// lock space with no cross-server coordination on the certified tier:
// static certification is exactly the proof that per-entity ordering
// suffices, and every entity has exactly one owning server, so per-entity
// fencing and leases stay per-server and each server remains the sole
// authority for its partition.
//
// Cross-partition concerns live here. Snapshot and GrantLog merge the
// per-server views under one coherent instance namespace (this cluster's
// own sessions keep their local IDs on every partition; foreign sessions'
// composed IDs are additionally namespaced by partition, since connection
// IDs are only unique per server). ReleaseAll fans out to the partitions
// that own the entities and aggregates failures with errors.Join. Wound
// routes to every partition, because an instance may hold on one server
// while parked on another. A lost partition degrades to ErrLeaseExpired
// on only its slice of the entity space — the server's lease machinery
// has already revoked that slice's grants — while every other partition
// keeps granting.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
)

func init() {
	locktable.RegisterCluster(func(ddb *model.DDB, cfg locktable.Config, addrs []string) (locktable.Table, error) {
		return New(ddb, cfg, addrs, Options{})
	})
}

// DefaultDialRetries is the connect-retry budget a cluster dial gets when
// Options.Dial doesn't choose one: a cluster client typically starts
// concurrently with its N servers, so surviving a racing startup (about
// 800ms of `connection refused` at the default backoff) is the default
// posture rather than an opt-in.
const DefaultDialRetries = 5

// Options tunes cluster construction.
type Options struct {
	// Dial tunes every partition connection. A zero DialRetries is
	// upgraded to DefaultDialRetries; set it negative to fail on the
	// first refused connect.
	Dial netlock.DialOptions
}

// Table routes a locktable.Table over N netlock servers. Build with New;
// it satisfies the same contract as the in-process backends, so the
// conformance suite, the engine, and the detector drive it unchanged.
type Table struct {
	parts []*netlock.Client

	mu     sync.Mutex
	closed bool
}

var _ locktable.Table = (*Table)(nil)

// New dials one client per address and returns the routing table. Every
// server must host the same database (each handshake verifies the
// fingerprint) with matching WoundWait/Trace; the address list ORDER is
// part of the cluster identity — every client process must pass the same
// addresses in the same order to agree on entity ownership. On any dial
// failure the already-connected partitions are closed and the error names
// the failed partition.
func New(ddb *model.DDB, cfg locktable.Config, addrs []string, opts Options) (*Table, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: need at least one server address")
	}
	dial := opts.Dial
	if dial.DialRetries == 0 {
		dial.DialRetries = DefaultDialRetries
	} else if dial.DialRetries < 0 {
		dial.DialRetries = 0
	}
	t := &Table{parts: make([]*netlock.Client, len(addrs))}
	for i, addr := range addrs {
		cli, err := netlock.Dial(addr, ddb, cfg, dial)
		if err != nil {
			for _, c := range t.parts[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("cluster: partition %d/%d: %w", i, len(addrs), err)
		}
		t.parts[i] = cli
	}
	return t, nil
}

// Partitions reports the number of servers in the cluster.
func (t *Table) Partitions() int { return len(t.parts) }

// Partition returns the index of the server that owns the entity: the
// same Fibonacci-multiplier mix the sharded backend stripes with, one
// level up. Deterministic in (entity, server count), so every client
// process sharing an address list agrees on ownership with no
// coordination.
func (t *Table) Partition(ent model.EntityID) int {
	h := uint64(ent) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(t.parts)))
}

func (t *Table) part(ent model.EntityID) *netlock.Client {
	return t.parts[t.Partition(ent)]
}

// mapErr translates one dead partition's shutdown error into lease
// language. ErrStopped from a partition client while the cluster itself
// is still open means that server (or its connection) died: the server's
// lease machinery has revoked the session's grants on that slice of the
// entity space, which is exactly what ErrLeaseExpired reports — and the
// cluster as a whole must not present a partial outage as a table
// shutdown, because every other partition keeps granting. After Close
// the translation stops and ErrStopped means what it says.
func (t *Table) mapErr(err error) error {
	if err == nil || !errors.Is(err, locktable.ErrStopped) {
		return err
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return locktable.ErrStopped
	}
	return netlock.ErrLeaseExpired
}

// Acquire implements locktable.Table: the request goes to the entity's
// owning partition, whose grant queue alone decides order.
func (t *Table) Acquire(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode locktable.Mode) error {
	return t.mapErr(t.part(ent).Acquire(ctx, inst, ent, mode))
}

// Release implements locktable.Table.
func (t *Table) Release(ent model.EntityID, key locktable.InstKey) error {
	return t.mapErr(t.part(ent).Release(ent, key))
}

// ReleaseAll implements locktable.Table: entities are grouped by owning
// partition and released with one fan-out call per server, concurrently.
// Per-partition failures are aggregated with errors.Join in partition
// order, so a caller sees every slice that could not confirm release —
// a dead partition contributes its lease-expiry error without blocking
// the live partitions' releases.
func (t *Table) ReleaseAll(ents []model.EntityID, key locktable.InstKey) error {
	if len(ents) == 0 {
		return nil
	}
	groups := make([][]model.EntityID, len(t.parts))
	for _, ent := range ents {
		p := t.Partition(ent)
		groups[p] = append(groups[p], ent)
	}
	errs := make([]error, len(t.parts))
	var wg sync.WaitGroup
	for p, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int, g []model.EntityID) {
			defer wg.Done()
			errs[p] = t.mapErr(t.parts[p].ReleaseAll(g, key))
		}(p, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Withdraw implements locktable.Table.
func (t *Table) Withdraw(ent model.EntityID, key locktable.InstKey) bool {
	return t.part(ent).Withdraw(ent, key)
}

// Wound implements locktable.Table: the withdrawal is broadcast to every
// partition. The cluster does not track which servers an instance is
// parked on, and a wound must reach them all — the instance may be
// waiting on one entity while holding others, partitions apart.
func (t *Table) Wound(key locktable.InstKey) {
	var wg sync.WaitGroup
	for _, c := range t.parts {
		wg.Add(1)
		go func(c *netlock.Client) {
			defer wg.Done()
			c.Wound(key)
		}(c)
	}
	wg.Wait()
}

// foreignPartitionShift places a partition tag above netlock's composed
// connection namespace (connection ID in bits 32..63 of the composed
// instance ID). Folding the tag into bits 48+ assumes per-server
// connection IDs stay below 2^16 — comfortably true for any deployment
// this experiment tier runs (IDs are sequential per server process).
const foreignPartitionShift = 48

// renameID keeps merged cross-partition views coherent. This cluster's
// own instance IDs come back from every partition client already
// stripped to local numbering, so the same session appears under the
// same ID everywhere — which is what lets a detector close a wait cycle
// that spans servers. A FOREIGN session's ID stays composed (connection
// ID in the high bits), and connection IDs are only unique per server:
// server 0's conn 7 and server 1's conn 7 are different engines. The
// partition tag keeps foreign identities distinct across partitions —
// a false merge could invent a cross-server cycle that does not exist
// and wound an innocent victim. (A foreign engine dialing several
// partitions holds a different connection ID on each, so its
// cross-partition identity is inherently unmergeable from here; staying
// distinct is the sound direction for cycle detection.)
func renameID(p, id int) int {
	if id == locktable.AnonReaderID || uint64(id)>>32 == 0 {
		return id // ours (stripped to local), or the anonymous-reader sentinel
	}
	return id | (p+1)<<foreignPartitionShift
}

func renameKey(p int, k locktable.InstKey) locktable.InstKey {
	k.ID = renameID(p, k.ID)
	return k
}

// Snapshot implements locktable.Table: the per-partition wait graphs are
// concatenated under the merged namespace (see renameID). Entities are
// disjoint across partitions, so no edge is ever duplicated; the result
// is one coherent table view for StrategyDetect's detector.
func (t *Table) Snapshot() []locktable.WaitEdge {
	var out []locktable.WaitEdge
	for p, c := range t.parts {
		for _, ed := range c.Snapshot() {
			ed.Waiter = renameKey(p, ed.Waiter)
			ed.Holder = renameKey(p, ed.Holder)
			out = append(out, ed)
		}
	}
	return out
}

// GrantLog implements locktable.Table (Config.Trace only; call after
// Close, like every backend). Each entity lives on exactly one partition,
// so concatenating the per-server logs preserves every per-entity grant
// order — the only order the contract and the serializability checker
// rely on. Foreign instance IDs are renamed exactly as in Snapshot.
func (t *Table) GrantLog() []locktable.GrantEvent {
	var out []locktable.GrantEvent
	for p, c := range t.parts {
		for _, ev := range c.GrantLog() {
			ev.Inst = renameID(p, ev.Inst)
			out = append(out, ev)
		}
	}
	return out
}

// Close implements locktable.Table: every partition connection is closed
// concurrently (each server then releases the session's grants on its
// slice). The closed flag is set before the fan-out so that racing calls
// observe ErrStopped — a real shutdown — rather than a feigned lease
// expiry.
func (t *Table) Close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range t.parts {
		wg.Add(1)
		go func(c *netlock.Client) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
}
