package admission

import (
	"context"
	"errors"
	"strings"
	"testing"

	"distlock/internal/core"
	"distlock/internal/figures"
	"distlock/internal/model"
	"distlock/internal/runtime"
)

// ctx is the never-cancelled context shared by the package's tests.
var ctx = context.Background()

// chainTxn builds a totally ordered transaction from "Lx"/"Ux" specs.
func chainTxn(d *model.DDB, name string, specs ...string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, s := range specs {
		var id model.NodeID
		if s[0] == 'L' {
			id = b.Lock(s[1:])
		} else {
			id = b.Unlock(s[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

// xyzDDB returns a three-entity, three-site database.
func xyzDDB() *model.DDB {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	return d
}

// ringTxns is the classic circular-wait trio: pairwise certified, but the
// third class closes a violating Theorem 4 cycle.
func ringTxns(d *model.DDB) []*model.Transaction {
	return []*model.Transaction{
		chainTxn(d, "A", "Lx", "Ly", "Ux", "Uy"),
		chainTxn(d, "B", "Ly", "Lz", "Uy", "Uz"),
		chainTxn(d, "C", "Lz", "Lx", "Uz", "Ux"),
	}
}

// orderedTxns is the globally lock-ordered trio: fully certifiable.
func orderedTxns(d *model.DDB) []*model.Transaction {
	return []*model.Transaction{
		chainTxn(d, "A", "Lx", "Ly", "Ux", "Uy"),
		chainTxn(d, "B", "Lx", "Lz", "Ux", "Uz"),
		chainTxn(d, "C", "Ly", "Lz", "Uy", "Uz"),
	}
}

// checkBrute asserts that the service's decision for t against the live set
// agrees with the exhaustive Lemma 1 oracle on live ∪ {t}.
func checkBrute(t *testing.T, d *model.DDB, live []*model.Transaction, cand *model.Transaction, admitted bool) {
	t.Helper()
	sys := model.MustSystem(d, append(append([]*model.Transaction{}, live...), cand)...)
	want, _, err := core.IsSafeAndDeadlockFreeBrute(sys, core.BruteOptions{})
	if err != nil {
		t.Fatalf("brute: %v", err)
	}
	if admitted != want {
		t.Fatalf("admission of %s = %v disagrees with brute oracle %v", cand.Name(), admitted, want)
	}
}

func TestAdmitSequential(t *testing.T) {
	cases := []struct {
		name string
		txns func(*model.DDB) []*model.Transaction
		want []bool
	}{
		{"ordered-all-admitted", orderedTxns, []bool{true, true, true}},
		{"ring-third-rejected", ringTxns, []bool{true, true, false}},
		{"crosslock-second-rejected", func(d *model.DDB) []*model.Transaction {
			return []*model.Transaction{
				chainTxn(d, "A", "Lx", "Ly", "Ux", "Uy"),
				chainTxn(d, "B", "Ly", "Lx", "Uy", "Ux"),
			}
		}, []bool{true, false}},
		{"disjoint-always-admitted", func(d *model.DDB) []*model.Transaction {
			return []*model.Transaction{
				chainTxn(d, "A", "Lx", "Ux"),
				chainTxn(d, "B", "Ly", "Uy"),
				chainTxn(d, "C", "Lz", "Uz"),
			}
		}, []bool{true, true, true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := xyzDDB()
			txns := c.txns(d)
			svc := New(d, Options{})
			var live []*model.Transaction
			for i, txn := range txns {
				res, err := svc.Admit(ctx, txn)
				if err != nil {
					t.Fatal(err)
				}
				if res.Admitted != c.want[i] {
					t.Fatalf("Admit(%s) = %v (%s), want %v", txn.Name(), res.Admitted, res.Reason, c.want[i])
				}
				wantStrat := runtime.StrategyNone
				if !res.Admitted {
					wantStrat = runtime.StrategyWoundWait
				}
				if res.Strategy != wantStrat {
					t.Fatalf("Admit(%s) strategy = %v, want %v", txn.Name(), res.Strategy, wantStrat)
				}
				checkBrute(t, d, live, txn, res.Admitted)
				if res.Admitted {
					live = append(live, txn)
				}
			}
			if st := svc.Stats(); st.Live != len(live) {
				t.Fatalf("Stats.Live = %d, want %d", st.Live, len(live))
			}
		})
	}
}

func TestRejectionCarriesViolation(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{})
	txns := ringTxns(d)
	for _, txn := range txns[:2] {
		if res, _ := svc.Admit(ctx, txn); !res.Admitted {
			t.Fatalf("%s unexpectedly rejected", txn.Name())
		}
	}
	res, _ := svc.Admit(ctx, txns[2])
	if res.Admitted {
		t.Fatal("ring-closing class admitted")
	}
	if res.Violation == nil {
		t.Fatal("cycle rejection carries no Theorem 4 violation")
	}
	if len(res.Violation.Cycle) != 3 {
		t.Fatalf("violation cycle %v, want length 3", res.Violation.Cycle)
	}
}

func TestEvictReopensAdmission(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{})
	txns := ringTxns(d)
	svc.Admit(ctx, txns[0])
	svc.Admit(ctx, txns[1])
	if res, _ := svc.Admit(ctx, txns[2]); res.Admitted {
		t.Fatal("C admitted into a ring")
	}
	if !svc.Evict("A") {
		t.Fatal("Evict(A) = false")
	}
	if svc.Evict("A") {
		t.Fatal("double eviction reported true")
	}
	// Without A the ring cannot close: C now fits.
	res, _ := svc.Admit(ctx, txns[2])
	if !res.Admitted {
		t.Fatalf("C rejected after evicting A: %s", res.Reason)
	}
	checkBrute(t, d, []*model.Transaction{txns[1]}, txns[2], true)
	snap := svc.Snapshot()
	if snap.N() != 2 {
		t.Fatalf("snapshot has %d classes, want 2", snap.N())
	}
	if ok, _ := core.SystemSafeDF(snap); !ok {
		t.Fatal("snapshot not certified")
	}
}

func TestVerdictCacheSurvivesChurn(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{})
	txns := orderedTxns(d)
	for _, txn := range txns {
		svc.Admit(ctx, txn)
	}
	before := svc.Stats()
	if before.PairChecks == 0 {
		t.Fatal("no pair checks recorded on cold admissions")
	}
	// Churn C out and back in: its pair verdicts against A and B are cached
	// by fingerprint, so re-admission must cost zero new PairSafeDF
	// evaluations.
	svc.Evict("C")
	res, _ := svc.Admit(ctx, txns[2])
	if !res.Admitted {
		t.Fatalf("re-admission rejected: %s", res.Reason)
	}
	after := svc.Stats()
	if after.PairChecks != before.PairChecks {
		t.Fatalf("re-admission evaluated %d new pairs, want 0 (cache)", after.PairChecks-before.PairChecks)
	}
	if after.CacheHits <= before.CacheHits {
		t.Fatal("re-admission recorded no cache hits")
	}
}

func TestAdmitBatch(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{})
	rs, err := svc.AdmitBatch(ctx, ringTxns(d))
	if err != nil {
		t.Fatal(err)
	}
	got := []bool{rs[0].Admitted, rs[1].Admitted, rs[2].Admitted}
	if !got[0] || !got[1] || got[2] {
		t.Fatalf("batch decisions = %v, want [true true false]", got)
	}
	// One rejected class must not block the rest: the live set is A, B.
	if st := svc.Stats(); st.Live != 2 {
		t.Fatalf("Stats.Live = %d, want 2", st.Live)
	}
	if ok, _ := core.SystemSafeDF(svc.Snapshot()); !ok {
		t.Fatal("post-batch snapshot not certified")
	}
}

func TestDuplicateClassRejected(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{})
	a := chainTxn(d, "A", "Lx", "Ux")
	svc.Admit(ctx, a)
	res, _ := svc.Admit(ctx, chainTxn(d, "A", "Ly", "Uy"))
	if res.Admitted || !strings.Contains(res.Reason, "already admitted") {
		t.Fatalf("duplicate admission = %+v", res)
	}
}

func TestAdmitCancelledContext(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Admit(cancelled, chainTxn(d, "A", "Lx", "Ux")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Admit under a cancelled context = %v, want context.Canceled", err)
	}
	if st := svc.Stats(); st.Live != 0 || st.Admitted != 0 {
		t.Fatalf("cancelled admission mutated the certified set: %+v", st)
	}
	// The service stays usable after a cancelled decision.
	res, err := svc.Admit(ctx, chainTxn(d, "A", "Lx", "Ux"))
	if err != nil || !res.Admitted {
		t.Fatalf("admission after a cancellation: %+v, %v", res, err)
	}
}

func TestForeignDDBRejected(t *testing.T) {
	svc := New(xyzDDB(), Options{})
	other := xyzDDB()
	if _, err := svc.Admit(ctx, chainTxn(other, "A", "Lx", "Ux")); err == nil {
		t.Fatal("foreign-DDB class accepted without error")
	}
}

func TestCycleBudgetRejectsConservatively(t *testing.T) {
	d := xyzDDB()
	svc := New(d, Options{CycleBudget: 0}) // unlimited: baseline
	txns := ringTxns(d)
	svc.Admit(ctx, txns[0])
	svc.Admit(ctx, txns[1])

	tight := New(d, Options{CycleBudget: 1})
	tight.Admit(ctx, txns[0])
	tight.Admit(ctx, txns[1])
	// Closing the ring needs exactly one cycle check, which fits the
	// budget, so the genuine violation is still found.
	res, _ := tight.Admit(ctx, txns[2])
	if res.Admitted {
		t.Fatal("violating class admitted under budget")
	}
	if res.Violation == nil {
		t.Fatalf("budget pre-empted a findable violation: %s", res.Reason)
	}
	// The live set always stays certified, budget or not.
	if ok, _ := core.SystemSafeDF(tight.Snapshot()); !ok {
		t.Fatal("budgeted snapshot not certified")
	}
}

// TestMultiplicityCatchesSelfDeadlock: a class whose two Lock nodes are
// incomparable is fine alone but two concurrent copies of it can deadlock
// each other — certifying for Multiplicity 2 must reject it (Corollary 3),
// in agreement with both TwoCopiesSafeDF and the brute oracle.
func TestMultiplicityCatchesSelfDeadlock(t *testing.T) {
	d := xyzDDB()
	mk := func(name string) *model.Transaction {
		b := model.NewBuilder(d, name)
		lx, ux := b.LockUnlock("x")
		ly, uy := b.LockUnlock("y")
		b.Arc(lx, uy)
		b.Arc(ly, ux) // Lx and Ly incomparable: a copy can grab them opposed
		return b.MustFreeze()
	}
	if core.TwoCopiesSafeDF(mk("probe")) {
		t.Fatal("fixture unexpectedly passes Corollary 3")
	}

	solo := New(d, Options{})
	if res, _ := solo.Admit(ctx, mk("A")); !res.Admitted {
		t.Fatalf("single-instance admission rejected: %s", res.Reason)
	}

	dual := New(d, Options{Multiplicity: 2})
	res, _ := dual.Admit(ctx, mk("A"))
	if res.Admitted {
		t.Fatal("self-deadlocking class admitted at Multiplicity 2")
	}
	// Cross-check with the exhaustive oracle on two actual copies.
	sys := model.MustCopies(mk("oracle"), 2)
	want, _, err := core.IsSafeAndDeadlockFreeBrute(sys, core.BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want {
		t.Fatal("brute oracle disagrees: two copies are certifiable")
	}
}

// TestMultiplicityAgreesWithCopiesSafeDF drives single-class admissions at
// several multiplicities against Theorem 5's dedicated copies test,
// including Figure 6 (deadlock-free in two copies yet not SAFE in two — so
// every multiplicity >= 2 must reject it).
func TestMultiplicityAgreesWithCopiesSafeDF(t *testing.T) {
	fig6 := figures.Fig6()
	d2 := xyzDDB()
	ordered := chainTxn(d2, "O", "Lx", "Ly", "Ux", "Uy")
	for _, c := range []struct {
		name string
		txn  *model.Transaction
	}{{"fig6", fig6}, {"ordered", ordered}} {
		for _, m := range []int{1, 2, 3} {
			svc := New(c.txn.DDB(), Options{Multiplicity: m})
			res, err := svc.Admit(ctx, c.txn)
			if err != nil {
				t.Fatal(err)
			}
			want := core.CopiesSafeDF(c.txn, m)
			if res.Admitted != want {
				t.Fatalf("%s at multiplicity %d: admitted=%v, CopiesSafeDF=%v (%s)",
					c.name, m, res.Admitted, want, res.Reason)
			}
		}
	}
}

func TestExecuteMixEndToEnd(t *testing.T) {
	d := xyzDDB()
	// Certify for the 3-way per-class concurrency the mix will run with.
	svc := New(d, Options{Multiplicity: 3})
	var rejected []*model.Transaction
	for _, txn := range ringTxns(d) {
		res, err := svc.Admit(ctx, txn)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Admitted {
			rejected = append(rejected, txn)
		}
	}
	if len(rejected) != 1 {
		t.Fatalf("rejected %d classes, want 1", len(rejected))
	}
	m, err := svc.ExecuteMix(rejected, MixParams{ClientsPerClass: 3, TxnsPerClient: 5, Seed: 11})
	if err != nil {
		t.Fatalf("ExecuteMix: %v", err)
	}
	if m.Certified == nil || m.Certified.Committed != 2*3*5 {
		t.Fatalf("certified tier metrics = %+v", m.Certified)
	}
	// The paper's payoff: a certified mix needs no deadlock handling.
	if m.Certified.Aborts != 0 || m.Certified.Wounds != 0 {
		t.Fatalf("certified tier aborted under StrategyNone: %+v", m.Certified)
	}
	if m.Fallback == nil || m.Fallback.Committed != 1*3*5 {
		t.Fatalf("fallback tier metrics = %+v", m.Fallback)
	}
}
